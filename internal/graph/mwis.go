package graph

import (
	"fmt"
	"math"
	"slices"
)

// Graph is an undirected vertex-weighted graph for the maximum weighted
// independent set problem. Vertices are 0..N-1; parallel edges are
// deduplicated and self-loops are rejected.
//
// Edges accumulate in a flat buffer and are compiled on first query into a
// CSR (compressed sparse row) adjacency: one offsets array and one shared
// neighbor array, with each vertex's neighbors sorted ascending. The layout
// replaces the per-edge dedup map and per-vertex append churn of the
// previous implementation — graph construction is two passes over a sorted
// edge list, and adjacency scans are contiguous. Finalize compiles
// explicitly; reads after Finalize (and no further AddEdge calls) are safe
// from concurrent goroutines.
type Graph struct {
	weights []float64
	// pend holds every inserted edge as uint64(u)<<32|v with u < v.
	// Finalize sorts and deduplicates it in place; it remains the source
	// of truth so AddEdge after Finalize just marks the CSR dirty.
	pend []uint64
	// CSR adjacency, valid while !dirty.
	off   []int32
	nbr   []int32
	edges int
	dirty bool
}

// NewGraph returns a graph with n vertices of weight zero and no edges.
func NewGraph(n int) *Graph {
	return &Graph{weights: make([]float64, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.weights) }

// M returns the number of distinct edges.
func (g *Graph) M() int { g.Finalize(); return g.edges }

// SetWeight assigns vertex v's weight.
func (g *Graph) SetWeight(v int, w float64) {
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid MWIS weight %v for vertex %d", w, v))
	}
	g.weights[v] = w
}

// Weight returns vertex v's weight.
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.Finalize()
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns v's adjacency list, sorted ascending. The caller must
// not modify it.
func (g *Graph) Neighbors(v int) []int32 {
	g.Finalize()
	return g.nbr[g.off[v]:g.off[v+1]]
}

// AddEdge inserts the undirected edge {u,v}. Duplicate edges are ignored;
// self-loops panic (a vertex cannot conflict with itself in the reduction).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	g.pend = append(g.pend, uint64(u)<<32|uint64(uint32(v)))
	g.dirty = true
}

// Grow reserves capacity for n additional edges, so bulk construction
// (e.g. the offline reduction's counted edge expansion) appends with no
// reallocation.
func (g *Graph) Grow(n int) {
	g.pend = slices.Grow(g.pend, n)
}

// Finalize compiles pending edges into the CSR adjacency. It is called
// implicitly by every adjacency query; call it explicitly before sharing
// the graph across goroutines so concurrent reads race-free.
//
// Edges are bucketed per endpoint with one counting pass and one scatter
// pass, then each vertex's bucket is sorted and deduplicated in place. On
// the window-bounded scheduling graphs adjacency lists are short, so the
// per-bucket sorts are cheap insertion sorts and the whole compile touches
// the edge buffer twice — cheaper than sorting it globally.
func (g *Graph) Finalize() {
	if !g.dirty && g.off != nil {
		return
	}
	n := len(g.weights)
	if cap(g.off) >= n+1 {
		g.off = g.off[:n+1]
		for i := range g.off {
			g.off[i] = 0
		}
	} else {
		g.off = make([]int32, n+1)
	}
	// Counting pass: degree of each endpoint (duplicates included; they are
	// squeezed out below), accumulated at off[v+1].
	for _, e := range g.pend {
		u, v := int32(e>>32), int32(uint32(e))
		g.off[u+1]++
		g.off[v+1]++
	}
	for i := 1; i <= n; i++ {
		g.off[i] += g.off[i-1]
	}
	if cap(g.nbr) >= 2*len(g.pend) {
		g.nbr = g.nbr[:2*len(g.pend)]
	} else {
		g.nbr = make([]int32, 2*len(g.pend))
	}
	cursor := make([]int32, n)
	copy(cursor, g.off[:n])
	for _, e := range g.pend {
		u, v := int32(e>>32), int32(uint32(e))
		g.nbr[cursor[u]] = v
		cursor[u]++
		g.nbr[cursor[v]] = u
		cursor[v]++
	}
	// Sort and deduplicate each bucket, compacting nbr in place. The write
	// cursor w never passes the read window, so overwrites only touch
	// already-consumed entries.
	var w int32
	start := int32(0)
	var scratch []int32
	for v := 0; v < n; v++ {
		end := g.off[v+1]
		scratch = sortBucket(g.nbr[start:end], scratch)
		seg := g.nbr[start:end]
		g.off[v] = w
		last := int32(-1)
		for _, x := range seg {
			if x != last {
				g.nbr[w] = x
				w++
				last = x
			}
		}
		start = end
	}
	g.off[n] = w
	g.nbr = g.nbr[:w]
	g.edges = int(w) / 2
	g.dirty = false
}

// sortBucket sorts one adjacency bucket, returning the (possibly grown)
// scratch buffer for reuse. Buckets filled from an ordered edge stream —
// the offline reduction emits each request range's pairs in ascending
// order, giving every vertex at most two sorted runs — are recognized in
// one scan and fixed with a linear two-run merge; arbitrary insertion
// orders fall back to a comparison sort.
func sortBucket(a []int32, scratch []int32) []int32 {
	k := -1
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			k = i
			break
		}
	}
	if k < 0 {
		return scratch // already sorted
	}
	twoRuns := true
	for i := k + 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			twoRuns = false
			break
		}
	}
	if !twoRuns {
		slices.Sort(a)
		return scratch
	}
	// Merge the runs a[:k] and a[k:]; only the first run needs staging.
	scratch = append(scratch[:0], a[:k]...)
	i, j, w := 0, k, 0
	for i < len(scratch) && j < len(a) {
		if scratch[i] <= a[j] {
			a[w] = scratch[i]
			i++
		} else {
			a[w] = a[j]
			j++
		}
		w++
	}
	for i < len(scratch) {
		a[w] = scratch[i]
		i++
		w++
	}
	return scratch
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.Finalize()
	adj := g.nbr[g.off[u]:g.off[u+1]]
	_, ok := slices.BinarySearch(adj, int32(v))
	return ok
}

// IsIndependentSet reports whether the vertex set contains no edge.
func (g *Graph) IsIndependentSet(vs []int) bool {
	in := make(map[int]struct{}, len(vs))
	for _, v := range vs {
		if v < 0 || v >= g.N() {
			return false
		}
		if _, dup := in[v]; dup {
			return false
		}
		in[v] = struct{}{}
	}
	for _, v := range vs {
		for _, u := range g.Neighbors(v) {
			if _, ok := in[int(u)]; ok {
				return false
			}
		}
	}
	return true
}

// SetWeightSum returns the total weight of the vertex set.
func (g *Graph) SetWeightSum(vs []int) float64 {
	total := 0.0
	for _, v := range vs {
		total += g.weights[v]
	}
	return total
}

// ratioItem is a lazy max-heap entry keyed by a selection ratio. Entries go
// stale when deletions change a vertex's degree or neighborhood weight; a
// stale pop is re-keyed and reinserted (ratios only grow as the graph
// shrinks, so the first fresh pop is the true maximum).
type ratioItem struct {
	v     int
	ratio float64
	stamp int64 // value of the vertex's version counter when keyed
}

// ratioHeap is a concrete binary max-heap ordered by (ratio desc, v asc).
// The comparison is a strict total order over live entries, so the pop
// sequence — and therefore every greedy selection — is independent of the
// heap's internal layout. Hand-rolled rather than container/heap to avoid
// interface dispatch on the greedy's hottest loop.
type ratioHeap []ratioItem

func (h ratioHeap) less(i, j int) bool {
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio // max-heap
	}
	return h[i].v < h[j].v
}

func (h ratioHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h ratioHeap) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h ratioHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h *ratioHeap) pop() ratioItem {
	old := *h
	it := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).down(0)
	return it
}

func (h *ratioHeap) push(it ratioItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

// GWMIN is the greedy of Sakai, Togasaki and Yamazaki [22] used by the
// paper's offline scheduler: repeatedly select the vertex maximizing
// W(u)/(deg(u)+1) in the remaining graph. It guarantees an independent set
// of weight at least Sum_v W(v)/(deg(v)+1).
//
// Residual degrees need no bookkeeping of their own: the greedy's version
// counter increments exactly once per alive neighbor lost, so the residual
// degree is the initial degree minus the vertex's version. Re-keying a
// stale heap entry is therefore O(1), and the computed ratios — hence the
// selected set — are bit-identical to a recomputing implementation
// (integer arithmetic feeding the same division).
func GWMIN(g *Graph) ([]int, float64) {
	g.Finalize()
	n := g.N()
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		alive[v] = true
	}
	version := make([]int64, n)
	return greedyWithAlive(g, alive, version, func(v int) float64 {
		deg := int64(g.off[v+1]-g.off[v]) - version[v]
		return g.weights[v] / float64(deg+1)
	})
}

// GWMIN2 is the second greedy from [22]: select the vertex maximizing
// W(u) / Sum_{x in N[u]} W(x). It often beats GWMIN on weight-skewed graphs.
//
// The closed-neighborhood weight sum is recomputed per query (not maintained
// by subtraction) so the floating-point ratios match a from-scratch
// evaluation exactly, keeping results reproducible across refactors.
func GWMIN2(g *Graph) ([]int, float64) {
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	return greedyWithAlive(g, alive, make([]int64, g.N()), func(v int) float64 {
		sum := g.weights[v]
		for _, u := range g.Neighbors(v) {
			if alive[u] {
				sum += g.weights[u]
			}
		}
		if sum == 0 {
			return math.Inf(1) // zero-weight isolated vertex: free to take
		}
		return g.weights[v] / sum
	})
}

// greedyWithAlive runs a degree-driven greedy: repeatedly select the alive
// vertex maximizing ratio(v), add it to the independent set, and delete it
// with its closed neighborhood. ratio must be non-decreasing under vertex
// deletions (true for GWMIN and GWMIN2), which keeps the lazy max-heap
// exact: a stale pop is re-keyed and reinserted with a ratio at least as
// large. version, caller-allocated with one counter per vertex, increments
// each time an alive vertex loses an alive neighbor; the ratio closure may
// read it to derive incremental state (GWMIN's residual degrees).
func greedyWithAlive(g *Graph, alive []bool, version []int64, ratio func(v int) float64) ([]int, float64) {
	g.Finalize()
	n := g.N()
	h := make(ratioHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, ratioItem{v: v, ratio: ratio(v)})
	}
	h.init()

	deleteVertex := func(v int) {
		alive[v] = false
		for _, u := range g.Neighbors(v) {
			if alive[u] {
				version[u]++
			}
		}
	}

	var is []int
	total := 0.0
	for len(h) > 0 {
		it := h.pop()
		if !alive[it.v] {
			continue
		}
		if it.stamp != version[it.v] {
			h.push(ratioItem{v: it.v, ratio: ratio(it.v), stamp: version[it.v]})
			continue
		}
		is = append(is, it.v)
		total += g.weights[it.v]
		neighbors := g.Neighbors(it.v)
		deleteVertex(it.v)
		for _, u := range neighbors {
			if alive[u] {
				deleteVertex(int(u))
			}
		}
	}
	return is, total
}

// ExactMWIS solves maximum weighted independent set exactly by branch and
// bound, branching on the maximum-degree vertex with a residual-weight
// bound. Exponential in the worst case; intended for instances with up to a
// few dozen vertices (tests and optimality-gap measurements).
func ExactMWIS(g *Graph) ([]int, float64) {
	g.Finalize()
	n := g.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	var best []int
	bestW := math.Inf(-1)
	var cur []int

	var rec func(curW, residual float64)
	rec = func(curW, residual float64) {
		if curW+residual <= bestW {
			return
		}
		// Pick the alive vertex with maximum degree; take isolated
		// vertices greedily (always optimal).
		pick, pickDeg := -1, -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			deg := 0
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					deg++
				}
			}
			if deg == 0 {
				// Isolated: include unconditionally.
				alive[v] = false
				cur = append(cur, v)
				rec(curW+g.weights[v], residual-g.weights[v])
				cur = cur[:len(cur)-1]
				alive[v] = true
				return
			}
			if deg > pickDeg {
				pick, pickDeg = v, deg
			}
		}
		if pick < 0 {
			if curW > bestW {
				bestW = curW
				best = append(best[:0], cur...)
			}
			return
		}
		// Branch 1: include pick, removing its closed neighborhood.
		removed := []int{pick}
		removedW := g.weights[pick]
		alive[pick] = false
		for _, u := range g.Neighbors(pick) {
			if alive[u] {
				alive[u] = false
				removed = append(removed, int(u))
				removedW += g.weights[u]
			}
		}
		cur = append(cur, pick)
		rec(curW+g.weights[pick], residual-removedW)
		cur = cur[:len(cur)-1]
		for _, v := range removed {
			alive[v] = true
		}
		// Branch 2: exclude pick.
		alive[pick] = false
		rec(curW, residual-g.weights[pick])
		alive[pick] = true
	}

	residual := 0.0
	for v := 0; v < n; v++ {
		residual += g.weights[v]
	}
	rec(0, residual)
	if best == nil {
		return []int{}, 0
	}
	return best, bestW
}
