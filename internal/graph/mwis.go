package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is an undirected vertex-weighted graph for the maximum weighted
// independent set problem. Vertices are 0..N-1; parallel edges and
// self-loops are rejected. The zero value is an empty graph; use NewGraph
// to size it.
type Graph struct {
	weights []float64
	adj     [][]int32
	edges   int
	seen    map[uint64]struct{}
}

// NewGraph returns a graph with n vertices of weight zero and no edges.
func NewGraph(n int) *Graph {
	return &Graph{
		weights: make([]float64, n),
		adj:     make([][]int32, n),
		seen:    make(map[uint64]struct{}),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.weights) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// SetWeight assigns vertex v's weight.
func (g *Graph) SetWeight(v int, w float64) {
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid MWIS weight %v for vertex %d", w, v))
	}
	g.weights[v] = w
}

// Weight returns vertex v's weight.
func (g *Graph) Weight(v int) float64 { return g.weights[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's adjacency list. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// AddEdge inserts the undirected edge {u,v}. Duplicate edges are ignored;
// self-loops panic (a vertex cannot conflict with itself in the reduction).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	key := uint64(u)<<32 | uint64(uint32(v))
	if _, dup := g.seen[key]; dup {
		return
	}
	g.seen[key] = struct{}{}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := g.seen[uint64(u)<<32|uint64(uint32(v))]
	return ok
}

// IsIndependentSet reports whether the vertex set contains no edge.
func (g *Graph) IsIndependentSet(vs []int) bool {
	in := make(map[int]struct{}, len(vs))
	for _, v := range vs {
		if v < 0 || v >= g.N() {
			return false
		}
		if _, dup := in[v]; dup {
			return false
		}
		in[v] = struct{}{}
	}
	for _, v := range vs {
		for _, u := range g.adj[v] {
			if _, ok := in[int(u)]; ok {
				return false
			}
		}
	}
	return true
}

// SetWeightSum returns the total weight of the vertex set.
func (g *Graph) SetWeightSum(vs []int) float64 {
	total := 0.0
	for _, v := range vs {
		total += g.weights[v]
	}
	return total
}

// ratioItem is a lazy max-heap entry keyed by a selection ratio. Entries go
// stale when deletions change a vertex's degree or neighborhood weight; a
// stale pop is re-keyed and reinserted (ratios only grow as the graph
// shrinks, so the first fresh pop is the true maximum).
type ratioItem struct {
	v     int
	ratio float64
	stamp int64 // value of the vertex's version counter when keyed
}

type ratioHeap []ratioItem

func (h ratioHeap) Len() int { return len(h) }
func (h ratioHeap) Less(i, j int) bool {
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio // max-heap
	}
	return h[i].v < h[j].v
}
func (h ratioHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ratioHeap) Push(x any)        { *h = append(*h, x.(ratioItem)) }
func (h *ratioHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *ratioHeap) pop() ratioItem    { return heap.Pop(h).(ratioItem) }
func (h *ratioHeap) push(it ratioItem) { heap.Push(h, it) }

// GWMIN is the greedy of Sakai, Togasaki and Yamazaki [22] used by the
// paper's offline scheduler: repeatedly select the vertex maximizing
// W(u)/(deg(u)+1) in the remaining graph. It guarantees an independent set
// of weight at least Sum_v W(v)/(deg(v)+1).
func GWMIN(g *Graph) ([]int, float64) {
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	return greedyWithAlive(g, alive, func(v int) float64 {
		deg := 0
		for _, u := range g.adj[v] {
			if alive[u] {
				deg++
			}
		}
		return g.weights[v] / float64(deg+1)
	})
}

// GWMIN2 is the second greedy from [22]: select the vertex maximizing
// W(u) / Sum_{x in N[u]} W(x). It often beats GWMIN on weight-skewed graphs.
func GWMIN2(g *Graph) ([]int, float64) {
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	return greedyWithAlive(g, alive, func(v int) float64 {
		sum := g.weights[v]
		for _, u := range g.adj[v] {
			if alive[u] {
				sum += g.weights[u]
			}
		}
		if sum == 0 {
			return math.Inf(1) // zero-weight isolated vertex: free to take
		}
		return g.weights[v] / sum
	})
}

// greedyWithAlive runs a degree-driven greedy: repeatedly select the alive
// vertex maximizing ratio(v), add it to the independent set, and delete it
// with its closed neighborhood. ratio must be non-decreasing under vertex
// deletions (true for GWMIN and GWMIN2), which keeps the lazy max-heap
// exact: a stale pop is re-keyed and reinserted with a ratio at least as
// large. The aliveness slice is shared with the caller's ratio callback.
func greedyWithAlive(g *Graph, alive []bool, ratio func(v int) float64) ([]int, float64) {
	n := g.N()
	version := make([]int64, n)
	h := make(ratioHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, ratioItem{v: v, ratio: ratio(v)})
	}
	heap.Init(&h)

	deleteVertex := func(v int) {
		alive[v] = false
		for _, u := range g.adj[v] {
			if alive[u] {
				version[u]++
			}
		}
	}

	var is []int
	total := 0.0
	for h.Len() > 0 {
		it := h.pop()
		if !alive[it.v] {
			continue
		}
		if it.stamp != version[it.v] {
			h.push(ratioItem{v: it.v, ratio: ratio(it.v), stamp: version[it.v]})
			continue
		}
		is = append(is, it.v)
		total += g.weights[it.v]
		neighbors := g.adj[it.v]
		deleteVertex(it.v)
		for _, u := range neighbors {
			if alive[u] {
				deleteVertex(int(u))
			}
		}
	}
	return is, total
}

// ExactMWIS solves maximum weighted independent set exactly by branch and
// bound, branching on the maximum-degree vertex with a residual-weight
// bound. Exponential in the worst case; intended for instances with up to a
// few dozen vertices (tests and optimality-gap measurements).
func ExactMWIS(g *Graph) ([]int, float64) {
	n := g.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	var best []int
	bestW := math.Inf(-1)
	var cur []int

	var rec func(curW, residual float64)
	rec = func(curW, residual float64) {
		if curW+residual <= bestW {
			return
		}
		// Pick the alive vertex with maximum degree; take isolated
		// vertices greedily (always optimal).
		pick, pickDeg := -1, -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			deg := 0
			for _, u := range g.adj[v] {
				if alive[u] {
					deg++
				}
			}
			if deg == 0 {
				// Isolated: include unconditionally.
				alive[v] = false
				cur = append(cur, v)
				rec(curW+g.weights[v], residual-g.weights[v])
				cur = cur[:len(cur)-1]
				alive[v] = true
				return
			}
			if deg > pickDeg {
				pick, pickDeg = v, deg
			}
		}
		if pick < 0 {
			if curW > bestW {
				bestW = curW
				best = append(best[:0], cur...)
			}
			return
		}
		// Branch 1: include pick, removing its closed neighborhood.
		removed := []int{pick}
		removedW := g.weights[pick]
		alive[pick] = false
		for _, u := range g.adj[pick] {
			if alive[u] {
				alive[u] = false
				removed = append(removed, int(u))
				removedW += g.weights[u]
			}
		}
		cur = append(cur, pick)
		rec(curW+g.weights[pick], residual-removedW)
		cur = cur[:len(cur)-1]
		for _, v := range removed {
			alive[v] = true
		}
		// Branch 2: exclude pick.
		alive[pick] = false
		rec(curW, residual-g.weights[pick])
		alive[pick] = true
	}

	residual := 0.0
	for v := 0; v < n; v++ {
		residual += g.weights[v]
	}
	rec(0, residual)
	if best == nil {
		return []int{}, 0
	}
	return best, bestW
}
