package diskmodel

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/simkernel"
)

func TestFailWhileActiveDrainsInFlightAndQueue(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	served := 0
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, func(core.Request, time.Duration) {
		served++
	}, Options{})

	eng.At(0, func(time.Duration) {
		for i := 0; i < 4; i++ {
			d.Submit(core.Request{ID: core.RequestID(i), LBA: int64(1000 * i)})
		}
	})
	// Fail mid-service: after spin-up plus half a service time.
	var drained []core.Request
	eng.At(pcfg.SpinUpTime+3*time.Millisecond, func(time.Duration) {
		drained = d.Fail()
	})
	eng.Run()
	if !d.Failed() || d.Failures() != 1 {
		t.Fatalf("failed=%v failures=%d", d.Failed(), d.Failures())
	}
	// One request was in flight, three queued; served at most one before
	// the failure.
	if len(drained)+served != 4 {
		t.Fatalf("drained %d + served %d != 4", len(drained), served)
	}
	if len(drained) == 0 {
		t.Fatal("nothing drained from a busy disk")
	}
	if d.Load() != 0 {
		t.Errorf("Load after Fail = %d", d.Load())
	}
	if d.State() != core.StateStandby {
		t.Errorf("state after Fail = %v, want standby (unpowered)", d.State())
	}
}

func TestFailDuringSpinUpCancelsTransition(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	eng.At(0, func(time.Duration) { d.Submit(core.Request{ID: 0, LBA: 1}) })
	eng.At(pcfg.SpinUpTime/2, func(time.Duration) {
		if got := len(d.Fail()); got != 1 {
			t.Errorf("drained %d, want the queued request", got)
		}
	})
	end := eng.Run()
	// The spin-up completion was cancelled: nothing else happens.
	if end != pcfg.SpinUpTime/2 {
		t.Errorf("run ended at %v, want %v (no surviving events)", end, pcfg.SpinUpTime/2)
	}
	if d.State() != core.StateStandby {
		t.Errorf("state = %v", d.State())
	}
}

func TestFailIsIdempotentAndRepairRestores(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	served := 0
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, func(core.Request, time.Duration) {
		served++
	}, Options{})
	eng.At(time.Second, func(time.Duration) {
		if d.Fail() != nil {
			t.Error("idle disk drained requests")
		}
		if d.Fail() != nil {
			t.Error("double Fail drained requests")
		}
		if d.Failures() != 1 {
			t.Errorf("failures = %d, want 1 (no-op second failure)", d.Failures())
		}
	})
	eng.At(2*time.Second, func(time.Duration) {
		d.Repair()
		d.Repair() // no-op
		d.Submit(core.Request{ID: 0, LBA: 9})
	})
	eng.Run()
	if served != 1 {
		t.Fatalf("served %d after repair, want 1", served)
	}
	st := d.Close()
	if st.SpinUps != 1 {
		t.Errorf("spin-ups = %d, want 1 (repair leaves the disk spun down)", st.SpinUps)
	}
}

func TestSubmitOnFailedDiskPanics(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	eng.At(0, func(time.Duration) {
		d.Fail()
		defer func() {
			if recover() == nil {
				t.Error("Submit on failed disk did not panic")
			}
		}()
		d.Submit(core.Request{ID: 0})
	})
	eng.Run()
}

func TestFailOnClosedDiskPanics(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	d.Close()
	defer func() {
		if recover() == nil {
			t.Error("Fail on closed disk did not panic")
		}
	}()
	d.Fail()
}

func TestFailLosesHeadPosition(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	eng.At(0, func(time.Duration) { d.Submit(core.Request{ID: 0, LBA: 12345}) })
	eng.At(time.Minute, func(time.Duration) {
		d.Fail()
		if d.headLBA != -1 {
			t.Errorf("headLBA = %d after power loss, want -1", d.headLBA)
		}
	})
	eng.Run()
}
