package diskmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/simkernel"
)

func TestMechValidate(t *testing.T) {
	t.Parallel()
	if err := Cheetah15K5().Validate(); err != nil {
		t.Fatalf("Cheetah15K5 invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*MechConfig)
	}{
		{"zero rpm", func(c *MechConfig) { c.RPM = 0 }},
		{"seek range inverted", func(c *MechConfig) { c.MaxSeek = c.MinSeek - 1 }},
		{"zero transfer", func(c *MechConfig) { c.TransferRate = 0 }},
		{"zero lba", func(c *MechConfig) { c.MaxLBA = 0 }},
		{"zero default io", func(c *MechConfig) { c.DefaultIO = 0 }},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c := Cheetah15K5()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", c)
			}
		})
	}
}

func TestSeekTimeProfile(t *testing.T) {
	t.Parallel()
	c := Cheetah15K5()
	if got := c.SeekTime(100, 100); got != 0 {
		t.Errorf("zero-distance seek = %v", got)
	}
	full := c.SeekTime(0, c.MaxLBA)
	if full != c.MaxSeek {
		t.Errorf("full-stroke seek = %v, want %v", full, c.MaxSeek)
	}
	short := c.SeekTime(0, 1000)
	if short < c.MinSeek || short > full {
		t.Errorf("short seek %v outside [%v,%v]", short, c.MinSeek, full)
	}
	if got := c.SeekTime(-1, 5); got != c.MaxSeek {
		t.Errorf("unknown head position seek = %v, want max", got)
	}
	// Monotone in distance.
	prev := time.Duration(0)
	for _, dist := range []int64{0, 10, 1e4, 1e6, 1e8} {
		s := c.SeekTime(0, dist)
		if s < prev {
			t.Errorf("seek not monotone at distance %d", dist)
		}
		prev = s
	}
}

func TestServiceTimeComponents(t *testing.T) {
	t.Parallel()
	c := Cheetah15K5()
	// Same-track read of 512 KB: rotation/2 + transfer only.
	got := c.ServiceTime(100, 100, 512<<10)
	rot := time.Duration(60 / c.RPM / 2 * float64(time.Second))
	xfer := time.Duration(float64(512<<10) / c.TransferRate * float64(time.Second))
	want := rot + xfer
	if math.Abs(float64(got-want)) > float64(time.Microsecond) {
		t.Errorf("ServiceTime = %v, want %v", got, want)
	}
	// 15K RPM: half rotation is 2 ms.
	if rot != 2*time.Millisecond {
		t.Errorf("half rotation = %v, want 2ms", rot)
	}
	// Default size kicks in for size <= 0.
	if got := c.ServiceTime(0, 0, 0); got != c.ServiceTime(0, 0, c.DefaultIO) {
		t.Error("default size not applied")
	}
	// Service times are milliseconds-scale (paper Section 2.1).
	if got > 20*time.Millisecond {
		t.Errorf("service time %v implausibly large", got)
	}
}

func newTestDisk(t *testing.T, eng simkernel.Sim, pcfg power.Config, policy power.Policy, onDone DoneFunc, opts Options) *Disk {
	t.Helper()
	d, err := New(1, Cheetah15K5(), pcfg, policy, eng, onDone, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskLifecycleStandbyToStandby(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	var doneAt time.Duration
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, func(_ core.Request, at time.Duration) {
		doneAt = at
	}, Options{})

	eng.At(0, func(time.Duration) {
		d.Submit(core.Request{ID: 0, Block: 1, Arrival: 0, LBA: 100})
	})
	end := eng.Run()

	if d.State() != core.StateStandby {
		t.Errorf("final state = %v, want standby", d.State())
	}
	// Timeline: spin-up 10s, service (~ms), idle T_B, spin-down 4s.
	if doneAt < pcfg.SpinUpTime {
		t.Errorf("request completed at %v, before spin-up finished", doneAt)
	}
	wantEnd := pcfg.SpinUpTime + pcfg.Breakeven() + pcfg.SpinDownTime
	if end < wantEnd || end > wantEnd+time.Second {
		t.Errorf("run ended at %v, want about %v", end, wantEnd)
	}
	st := d.Close()
	if st.SpinUps != 1 || st.SpinDowns != 1 {
		t.Errorf("spin ops = %d/%d, want 1/1", st.SpinUps, st.SpinDowns)
	}
	if st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
	if st.TimeIn[core.StateActive] <= 0 || st.TimeIn[core.StateActive] > 50*time.Millisecond {
		t.Errorf("active time = %v, want small positive", st.TimeIn[core.StateActive])
	}
}

func TestDiskBackToBackRequestsShareOneSpinUp(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	served := 0
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, func(core.Request, time.Duration) {
		served++
	}, Options{})

	for i := 0; i < 5; i++ {
		i := i
		eng.At(time.Duration(i)*time.Second, func(time.Duration) {
			d.Submit(core.Request{ID: core.RequestID(i), LBA: int64(i * 1000)})
		})
	}
	eng.Run()
	st := d.Close()
	if served != 5 {
		t.Fatalf("served = %d, want 5", served)
	}
	if st.SpinUps != 1 {
		t.Errorf("spin-ups = %d, want 1 (requests arrive within one active window)", st.SpinUps)
	}
}

func TestDiskIdleGapBeyondBreakevenSpinsDown(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})

	eng.At(0, func(time.Duration) { d.Submit(core.Request{ID: 0, LBA: 1}) })
	// Second request long after the breakeven window: disk must have spun
	// down and back up.
	gap := pcfg.SpinUpTime + pcfg.Breakeven() + pcfg.SpinDownTime + time.Minute
	eng.At(gap, func(time.Duration) { d.Submit(core.Request{ID: 1, LBA: 2}) })
	eng.Run()
	st := d.Close()
	if st.SpinUps != 2 || st.SpinDowns != 2 {
		t.Errorf("spin ops = %d/%d, want 2/2", st.SpinUps, st.SpinDowns)
	}
	if st.TimeIn[core.StateStandby] <= 0 {
		t.Error("no standby time despite long gap")
	}
}

func TestDiskRequestDuringSpinDownTriggersImmediateSpinUp(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	var completions []time.Duration
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, func(_ core.Request, at time.Duration) {
		completions = append(completions, at)
	}, Options{})

	eng.At(0, func(time.Duration) { d.Submit(core.Request{ID: 0, LBA: 1}) })
	// Arrive mid-spin-down: after first service + breakeven + half of
	// spin-down.
	midDown := pcfg.SpinUpTime + 50*time.Millisecond + pcfg.Breakeven() + pcfg.SpinDownTime/2
	eng.At(midDown, func(time.Duration) { d.Submit(core.Request{ID: 1, LBA: 2}) })
	eng.Run()
	st := d.Close()
	if len(completions) != 2 {
		t.Fatalf("completions = %d, want 2", len(completions))
	}
	// The second request waits for spin-down to finish plus a full spin-up.
	if completions[1] < midDown+pcfg.SpinUpTime {
		t.Errorf("second completion %v too early (no spin-up penalty)", completions[1])
	}
	if st.SpinUps != 2 {
		t.Errorf("spin-ups = %d, want 2", st.SpinUps)
	}
	if st.TimeIn[core.StateStandby] != 0 {
		t.Errorf("standby time = %v, want 0 (spin-down chained straight into spin-up)", st.TimeIn[core.StateStandby])
	}
}

func TestDiskAlwaysOnNeverSpinsDown(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.AlwaysOn{}, nil, Options{InitialState: core.StateIdle})
	eng.At(0, func(time.Duration) { d.Submit(core.Request{ID: 0, LBA: 1}) })
	eng.RunUntil(time.Hour)
	st := d.Close()
	if st.SpinUps != 0 || st.SpinDowns != 0 {
		t.Errorf("spin ops = %d/%d, want 0/0", st.SpinUps, st.SpinDowns)
	}
	if d.State() != core.StateIdle {
		t.Errorf("state = %v, want idle", d.State())
	}
	wantIdle := time.Hour - st.TimeIn[core.StateActive]
	if st.TimeIn[core.StateIdle] != wantIdle {
		t.Errorf("idle time = %v, want %v", st.TimeIn[core.StateIdle], wantIdle)
	}
}

func TestDiskLoadAndLastRequestTime(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	if _, ok := d.LastRequestTime(); ok {
		t.Error("LastRequestTime ok before any request")
	}
	eng.At(time.Second, func(time.Duration) {
		d.Submit(core.Request{ID: 0, LBA: 1})
		d.Submit(core.Request{ID: 1, LBA: 2})
		if d.Load() != 2 {
			t.Errorf("Load during spin-up = %d, want 2", d.Load())
		}
	})
	eng.At(time.Second+pcfg.SpinUpTime+time.Millisecond, func(time.Duration) {
		// One request is now in service, one queued.
		if d.Load() != 2 {
			t.Errorf("Load mid-service = %d, want 2", d.Load())
		}
	})
	eng.Run()
	if last, ok := d.LastRequestTime(); !ok || last != time.Second {
		t.Errorf("LastRequestTime = %v,%v, want 1s,true", last, ok)
	}
	if d.Load() != 0 {
		t.Errorf("Load after drain = %d, want 0", d.Load())
	}
}

func TestDiskFIFOOrder(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	var order []core.RequestID
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, func(r core.Request, _ time.Duration) {
		order = append(order, r.ID)
	}, Options{})
	eng.At(0, func(time.Duration) {
		for i := 0; i < 4; i++ {
			d.Submit(core.Request{ID: core.RequestID(i), LBA: int64(1000 * i)})
		}
	})
	eng.Run()
	for i, id := range order {
		if id != core.RequestID(i) {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestDiskEnergyMatchesAnalyticSingleCycle(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	eng.At(0, func(time.Duration) { d.Submit(core.Request{ID: 0, LBA: 1, Size: 512 << 10}) })
	eng.Run()
	st := d.Close()
	active := st.TimeIn[core.StateActive].Seconds()
	want := pcfg.SpinUpEnergy + // spin-up
		active*pcfg.ActivePower + // service
		pcfg.Breakeven().Seconds()*pcfg.IdlePower + // breakeven idle
		pcfg.SpinDownEnergy // spin-down
	if math.Abs(st.Energy-want) > 1e-6*want {
		t.Errorf("energy = %.3f J, want %.3f J", st.Energy, want)
	}
}

func TestDiskStatsStandbyFraction(t *testing.T) {
	t.Parallel()
	var s Stats
	s.TimeIn[core.StateStandby] = 30 * time.Second
	s.TimeIn[core.StateIdle] = 70 * time.Second
	if got := s.StandbyFraction(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("StandbyFraction = %v, want 0.3", got)
	}
	var empty Stats
	if empty.StandbyFraction() != 0 {
		t.Error("empty stats fraction != 0")
	}
}

func TestDiskClosePanicsWithOutstandingWork(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	pcfg := power.DefaultConfig()
	d := newTestDisk(t, &eng, pcfg, power.TwoCompetitive{Config: pcfg}, nil, Options{})
	eng.At(0, func(time.Duration) {
		d.Submit(core.Request{ID: 0, LBA: 1})
		defer func() {
			if recover() == nil {
				t.Error("Close with queued work did not panic")
			}
		}()
		d.Close()
	})
	eng.Run()
}

func TestDiskRejectsInvalidConfigs(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	bad := Cheetah15K5()
	bad.RPM = 0
	if _, err := New(0, bad, power.DefaultConfig(), power.AlwaysOn{}, &eng, nil, Options{}); err == nil {
		t.Error("New accepted invalid mechanics")
	}
	badPower := power.DefaultConfig()
	badPower.IdlePower = -1
	if _, err := New(0, Cheetah15K5(), badPower, power.AlwaysOn{}, &eng, nil, Options{}); err == nil {
		t.Error("New accepted invalid power config")
	}
	if _, err := New(0, Cheetah15K5(), power.DefaultConfig(), power.AlwaysOn{}, &eng, nil, Options{InitialState: core.StateActive}); err == nil {
		t.Error("New accepted active initial state")
	}
}
