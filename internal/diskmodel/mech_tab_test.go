package diskmodel

import (
	"math/rand"
	"testing"
)

// TestMechTabMatchesConfig pins the compiled hot-path table to the public
// model bit-for-bit: any drift between them would silently break the
// sharded kernel's byte-identity guarantee.
func TestMechTabMatchesConfig(t *testing.T) {
	c := Cheetah15K5()
	tab := c.compile()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50000; i++ {
		prev := rng.Int63n(c.MaxLBA+2) - 1 // includes -1 (unknown head)
		lba := rng.Int63n(c.MaxLBA)
		size := rng.Int63n(4<<20) - 1 // includes <=0 (default size)
		if got, want := tab.serviceTime(prev, lba, size), c.ServiceTime(prev, lba, size); got != want {
			t.Fatalf("serviceTime(%d,%d,%d) = %v, config says %v", prev, lba, size, got, want)
		}
		if got, want := tab.seekTime(prev, lba), c.SeekTime(prev, lba); got != want {
			t.Fatalf("seekTime(%d,%d) = %v, config says %v", prev, lba, got, want)
		}
	}
}
