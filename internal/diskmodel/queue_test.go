package diskmodel

import (
	"testing"

	"repro/internal/core"
)

func queueIDs(d *Disk) []core.RequestID {
	ids := make([]core.RequestID, 0, d.queued())
	for _, r := range d.queue[d.qhead:] {
		ids = append(ids, r.ID)
	}
	return ids
}

func reqN(i int) core.Request { return core.Request{ID: core.RequestID(i), LBA: int64(i)} }

// TestQueueWindowHeadPop exercises the deque-as-window FIFO: head pops
// advance qhead in O(1), interior removals preserve relative order, and
// draining resets the window to the slice start.
func TestQueueWindowHeadPop(t *testing.T) {
	d := &Disk{}
	for i := 0; i < 5; i++ {
		d.enqueue(reqN(i))
	}
	if d.queued() != 5 {
		t.Fatalf("queued = %d, want 5", d.queued())
	}
	if got := d.takeAt(0); got.ID != 0 {
		t.Fatalf("head pop returned %d, want 0", got.ID)
	}
	if d.qhead != 1 {
		t.Fatalf("head pop did not advance the window (qhead=%d)", d.qhead)
	}
	// Interior removal: take index 1 of the live window {1,2,3,4} → 2.
	if got := d.takeAt(1); got.ID != 2 {
		t.Fatalf("takeAt(1) returned %d, want 2", got.ID)
	}
	want := []core.RequestID{1, 3, 4}
	for i, id := range queueIDs(d) {
		if id != want[i] {
			t.Fatalf("after interior removal queue = %v, want %v", queueIDs(d), want)
		}
	}
	// Drain via head pops; the window must reset so capacity is reusable.
	for _, wantID := range want {
		if got := d.takeAt(0); got.ID != wantID {
			t.Fatalf("drain pop returned %d, want %d", got.ID, wantID)
		}
	}
	if d.queued() != 0 || d.qhead != 0 || len(d.queue) != 0 {
		t.Fatalf("drained queue did not reset: len=%d qhead=%d", len(d.queue), d.qhead)
	}
}

// TestQueueWindowCompaction fills the backing array past its capacity with
// a dead prefix present, forcing enqueue to compact instead of growing.
func TestQueueWindowCompaction(t *testing.T) {
	d := &Disk{queue: make([]core.Request, 0, initialQueueCap)}
	for i := 0; i < initialQueueCap; i++ {
		d.enqueue(reqN(i))
	}
	for i := 0; i < initialQueueCap/2; i++ {
		d.takeAt(0)
	}
	// Half the backing array is dead prefix; these appends must reuse it.
	capBefore := cap(d.queue)
	for i := initialQueueCap; i < initialQueueCap+initialQueueCap/2; i++ {
		d.enqueue(reqN(i))
	}
	if cap(d.queue) != capBefore {
		t.Fatalf("enqueue grew the array (cap %d -> %d) instead of compacting", capBefore, cap(d.queue))
	}
	if d.qhead != 0 {
		t.Fatalf("compaction left qhead=%d", d.qhead)
	}
	ids := queueIDs(d)
	if len(ids) != initialQueueCap {
		t.Fatalf("queued = %d, want %d", len(ids), initialQueueCap)
	}
	for i, id := range ids {
		if want := core.RequestID(initialQueueCap/2 + i); id != want {
			t.Fatalf("order broken after compaction: ids[%d] = %d, want %d", i, id, want)
		}
	}
}
