package diskmodel

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/simkernel"
)

// DoneFunc is invoked when a disk completes a request.
type DoneFunc func(req core.Request, completedAt time.Duration)

// Disk is one simulated disk: a FIFO request queue, the mechanical
// service-time model, and the five-state power machine of Section 2.1
// driven by a power-management policy (2CPM in the paper).
type Disk struct {
	id     core.DiskID
	mech   MechConfig
	mt     mechTab // mech compiled for the per-request hot path
	pcfg   power.Config
	policy power.Policy
	eng    simkernel.Sim
	meter  *power.Meter
	onDone DoneFunc

	state   core.DiskState
	onTrans func(d core.DiskID, now time.Duration, from, to core.DiskState, e obs.EnergyDelta)
	tr      *obs.Tracer
	// queue[qhead:] is the live FIFO window into a preallocated, reused
	// buffer: the head pops by advancing qhead (no copy, no allocation) and
	// the tail compacts the window down only when the buffer is full, so
	// steady-state queueing costs zero heap traffic.
	queue      []core.Request
	qhead      int
	inFlight   bool
	inFlightRq core.Request
	idleTimer  simkernel.Handle
	serviceEv  simkernel.Handle
	transition simkernel.Handle
	headLBA    int64
	ascending  bool
	disc       Discipline
	lastReq    time.Duration // T_last: when the disk last received a request
	everReq    bool
	served     int
	failed     bool
	failures   int
	closed     bool

	// Event callbacks bound once at construction: scheduling a service
	// completion or power transition reuses these instead of allocating a
	// closure (or method-value wrapper) per event.
	svcFn      simkernel.Event
	idleFn     simkernel.Event
	spunUpFn   simkernel.Event
	spunDownFn simkernel.Event

	// spinCause is the scheduler decision whose request initiated the
	// in-progress spin-up cycle; it stamps the transitions into and out of
	// spin-up so logs carry explicit causality. wakeCause remembers the
	// first decision to arrive mid-spin-down (2CPM cannot abort the
	// transition, so that decision pays for the spin-up that follows).
	// Both are zero when the transition was a policy action.
	spinCause obs.DecisionID
	wakeCause obs.DecisionID
}

// Options configures optional Disk behavior.
type Options struct {
	// InitialState is the power state at time zero; defaults to standby
	// (the paper's assumption). Always-on baselines start idle.
	InitialState core.DiskState
	// Discipline selects the queue service order; defaults to FIFO.
	Discipline Discipline
	// OnTransition, when non-nil, observes every power-state change with
	// the energy it settles (for state-timeline logging, visualization and
	// live metric export).
	OnTransition func(d core.DiskID, now time.Duration, from, to core.DiskState, e obs.EnergyDelta)
	// Tracer, when non-nil and enabled, receives the disk's structured
	// events: request queueing, service starts, completions and power
	// transitions. A nil Tracer costs one branch per instrumentation
	// point.
	Tracer *obs.Tracer
}

// New creates a disk attached to the simulation engine. onDone may be nil.
func New(id core.DiskID, mech MechConfig, pcfg power.Config, policy power.Policy, eng simkernel.Sim, onDone DoneFunc, opts Options) (*Disk, error) {
	if err := mech.Validate(); err != nil {
		return nil, err
	}
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	initial := opts.InitialState
	if initial == 0 {
		initial = core.StateStandby
	}
	if initial != core.StateStandby && initial != core.StateIdle {
		return nil, fmt.Errorf("diskmodel: initial state must be standby or idle, got %v", initial)
	}
	disc := opts.Discipline
	if disc == 0 {
		disc = FIFO
	}
	if !disc.Valid() {
		return nil, fmt.Errorf("diskmodel: invalid queue discipline %v", disc)
	}
	d := &Disk{
		id:        id,
		mech:      mech,
		mt:        mech.compile(),
		pcfg:      pcfg,
		policy:    policy,
		eng:       eng,
		meter:     power.NewMeter(pcfg, initial, eng.Now()),
		onDone:    onDone,
		state:     initial,
		headLBA:   -1,
		ascending: true,
		disc:      disc,
		onTrans:   opts.OnTransition,
		tr:        opts.Tracer,
		queue:     make([]core.Request, 0, initialQueueCap),
	}
	d.svcFn = d.onServiceDone
	d.idleFn = d.onIdleTimeout
	d.spunUpFn = d.onSpunUp
	d.spunDownFn = d.onSpunDown
	if initial == core.StateIdle {
		d.armIdleTimer()
	}
	return d, nil
}

// initialQueueCap preallocates each disk's queue buffer; bursts deeper than
// this grow it once and the grown buffer is reused for the rest of the run.
const initialQueueCap = 16

// queued returns the number of requests waiting (excluding in-flight).
func (d *Disk) queued() int { return len(d.queue) - d.qhead }

// enqueue appends to the FIFO window, compacting the buffer in place when
// the dead prefix is all that stands between the tail and capacity.
func (d *Disk) enqueue(req core.Request) {
	if d.qhead > 0 && len(d.queue) == cap(d.queue) {
		n := copy(d.queue, d.queue[d.qhead:])
		d.queue = d.queue[:n]
		d.qhead = 0
	}
	d.queue = append(d.queue, req)
}

// takeAt removes and returns the i-th waiting request (relative to the live
// window). The head pops in O(1); interior removals (SSTF/SCAN picks) shift
// the tail down, preserving arrival order exactly as the old copying queue
// did — bit-identical service sequences, zero allocations.
func (d *Disk) takeAt(i int) core.Request {
	idx := d.qhead + i
	req := d.queue[idx]
	if i == 0 {
		d.queue[idx] = core.Request{}
		d.qhead++
		if d.qhead == len(d.queue) {
			d.queue = d.queue[:0]
			d.qhead = 0
		}
		return req
	}
	copy(d.queue[idx:], d.queue[idx+1:])
	d.queue[len(d.queue)-1] = core.Request{}
	d.queue = d.queue[:len(d.queue)-1]
	return req
}

// ID returns the disk's identifier.
func (d *Disk) ID() core.DiskID { return d.id }

// State returns the current power state.
func (d *Disk) State() core.DiskState { return d.state }

// Load returns the current number of requests on the disk (queued plus in
// service) — the paper's performance cost P(d_k), Eq. 7.
func (d *Disk) Load() int {
	n := d.queued()
	if d.inFlight {
		n++
	}
	return n
}

// LastRequestTime returns T_last, the time the disk received its most
// recent request; ok is false if it never received one.
func (d *Disk) LastRequestTime() (time.Duration, bool) {
	return d.lastReq, d.everReq
}

// Served returns the number of completed requests.
func (d *Disk) Served() int { return d.served }

// Meter exposes the disk's energy meter for reporting.
func (d *Disk) Meter() *power.Meter { return d.meter }

func (d *Disk) setState(now time.Duration, s core.DiskState) {
	d.setStateCause(now, s, 0)
}

func (d *Disk) setStateCause(now time.Duration, s core.DiskState, cause obs.DecisionID) {
	stateJ, impulseJ := d.meter.Transition(now, s)
	if d.onTrans != nil {
		d.onTrans(d.id, now, d.state, s, obs.EnergyDelta{StateJ: stateJ, ImpulseJ: impulseJ})
	}
	d.tr.Power(now, d.id, d.state, s, stateJ, impulseJ, cause)
	d.state = s
}

// Submit enqueues a request at the current virtual time and wakes the disk
// if necessary. Requests arriving while the disk is spun down or spinning
// down incur the spin-up penalty (Section 1, problem (a)).
func (d *Disk) Submit(req core.Request) { d.SubmitCaused(req, 0) }

// SubmitCaused is Submit carrying the scheduler decision that routed the
// request here; the decision ID is stamped on the queue event and on any
// spin-up the arrival triggers, making wake causality explicit in the log.
func (d *Disk) SubmitCaused(req core.Request, cause obs.DecisionID) {
	if d.closed {
		panic(fmt.Sprintf("diskmodel: Submit on closed disk %d", d.id))
	}
	if d.failed {
		panic(fmt.Sprintf("diskmodel: Submit on failed disk %d", d.id))
	}
	now := d.eng.Now()
	d.lastReq = now
	d.everReq = true
	d.enqueue(req)
	d.tr.Queue(now, req.ID, d.id, d.Load(), cause)
	switch d.state {
	case core.StateStandby:
		d.beginSpinUp(now, cause)
	case core.StateIdle:
		d.eng.Cancel(d.idleTimer)
		d.startNext(now)
	case core.StateSpinDown:
		// The spin-down completion handler notices the non-empty queue
		// and immediately spins back up; the first arrival of the cycle
		// is the one that forces it.
		if d.wakeCause == 0 {
			d.wakeCause = cause
		}
	case core.StateSpinUp, core.StateActive:
		// Queued; drained on spin-up completion or service completion.
	}
}

func (d *Disk) beginSpinUp(now time.Duration, cause obs.DecisionID) {
	d.spinCause = cause
	d.setStateCause(now, core.StateSpinUp, cause)
	d.transition = d.eng.After(d.pcfg.SpinUpTime, d.spunUpFn)
}

func (d *Disk) onSpunUp(now time.Duration) {
	// Enter idle for accounting symmetry, then immediately start service
	// if work is queued. The transition out of spin-up settles the spin-up
	// energy, so it carries the decision that initiated the cycle.
	cause := d.spinCause
	d.spinCause = 0
	d.setStateCause(now, core.StateIdle, cause)
	if d.queued() > 0 {
		d.startNext(now)
	} else {
		d.armIdleTimer()
	}
}

// startNext begins servicing the queue head, or parks the disk idle when
// the queue is empty.
func (d *Disk) startNext(now time.Duration) {
	if d.queued() == 0 {
		if d.state != core.StateIdle {
			d.setState(now, core.StateIdle)
		}
		d.armIdleTimer()
		return
	}
	pick, ascending := pickIndex(d.disc, d.queue[d.qhead:], d.headLBA, d.ascending)
	req := d.takeAt(pick)
	d.ascending = ascending
	d.inFlight = true
	d.inFlightRq = req
	if d.state != core.StateActive {
		d.setState(now, core.StateActive)
	}
	d.tr.Serve(now, req.ID, d.id)
	svc := d.mt.serviceTime(d.headLBA, req.LBA, req.Size)
	size := req.Size
	if size <= 0 {
		size = d.mech.DefaultIO
	}
	d.headLBA = req.LBA + size/d.mech.SectorSize
	d.serviceEv = d.eng.After(svc, d.svcFn)
}

// onServiceDone completes the in-flight request and chains to the next one.
// It is bound once as svcFn; the request travels in d.inFlightRq instead of
// a per-service closure capture.
func (d *Disk) onServiceDone(done time.Duration) {
	req := d.inFlightRq
	d.inFlight = false
	d.inFlightRq = core.Request{}
	d.served++
	d.tr.Complete(done, req.ID, d.id, done-req.Arrival)
	if d.onDone != nil {
		d.onDone(req, done)
	}
	d.startNext(done)
}

func (d *Disk) armIdleTimer() {
	idle, ok := d.policy.SpinDownAfter()
	if !ok {
		return // always-on: never spin down
	}
	d.idleTimer = d.eng.After(idle, d.idleFn)
}

func (d *Disk) onIdleTimeout(now time.Duration) {
	if d.state != core.StateIdle || d.Load() > 0 {
		// Stale timer (a request raced in at the same instant).
		return
	}
	d.setState(now, core.StateSpinDown)
	d.transition = d.eng.After(d.pcfg.SpinDownTime, d.spunDownFn)
}

func (d *Disk) onSpunDown(now time.Duration) {
	if d.queued() > 0 {
		// A request arrived mid-spin-down: complete the cycle and go
		// straight back up (2CPM disks cannot abort a transition). The
		// first mid-spin-down arrival is charged with the spin-up.
		cause := d.wakeCause
		d.wakeCause = 0
		d.beginSpinUp(now, cause)
		return
	}
	d.wakeCause = 0
	d.setState(now, core.StateStandby)
}

// Failed reports whether the disk is currently failed.
func (d *Disk) Failed() bool { return d.failed }

// Failures returns how many times the disk has failed.
func (d *Disk) Failures() int { return d.failures }

// Fail models an abrupt disk failure (power loss) at the current virtual
// time: every pending event is cancelled, the in-flight request and the
// queue are returned to the caller for re-dispatch elsewhere, and the disk
// sits unpowered (standby accounting) until Repair. Failing a failed disk
// is a no-op returning nil.
func (d *Disk) Fail() []core.Request {
	if d.closed {
		panic(fmt.Sprintf("diskmodel: Fail on closed disk %d", d.id))
	}
	if d.failed {
		return nil
	}
	d.failed = true
	d.failures++
	d.eng.Cancel(d.idleTimer)
	d.eng.Cancel(d.serviceEv)
	d.eng.Cancel(d.transition)
	var drained []core.Request
	if d.inFlight {
		drained = append(drained, d.inFlightRq)
		d.inFlight = false
		d.inFlightRq = core.Request{}
	}
	drained = append(drained, d.queue[d.qhead:]...)
	d.queue = d.queue[:0]
	d.qhead = 0
	d.headLBA = -1 // head position lost with the power
	d.spinCause, d.wakeCause = 0, 0
	if d.state != core.StateStandby {
		d.setState(d.eng.Now(), core.StateStandby)
	}
	return drained
}

// Repair brings a failed disk back, spun down; the next request triggers a
// normal spin-up. Repairing a healthy disk is a no-op.
func (d *Disk) Repair() {
	if d.closed {
		panic(fmt.Sprintf("diskmodel: Repair on closed disk %d", d.id))
	}
	d.failed = false
}

// Close finalizes energy accounting at the current virtual time, emitting
// a terminal "end" event carrying the final state's energy accrual so a
// replayed log reproduces the meter totals exactly. The disk must be
// drained (no queued or in-flight requests).
func (d *Disk) Close() Stats {
	if !d.closed {
		if d.Load() > 0 {
			panic(fmt.Sprintf("diskmodel: Close with %d requests outstanding on disk %d", d.Load(), d.id))
		}
		now := d.eng.Now()
		j := d.meter.Close(now)
		d.tr.End(now, d.id, d.state, j)
		d.closed = true
	}
	return d.Stats()
}

// Stats summarizes the disk's accounting so far.
func (d *Disk) Stats() Stats {
	s := Stats{
		Disk:      d.id,
		Energy:    d.meter.Energy(),
		SpinUps:   d.meter.SpinUps(),
		SpinDowns: d.meter.SpinDowns(),
		Served:    d.served,
	}
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		s.TimeIn[st] = d.meter.TimeIn(st)
		s.EnergyIn[st] = d.meter.EnergyIn(st)
	}
	return s
}

// Stats is a per-disk accounting summary.
type Stats struct {
	Disk      core.DiskID
	Energy    float64 // joules
	SpinUps   int
	SpinDowns int
	Served    int
	TimeIn    [core.StateSpinDown + 1]time.Duration
	// EnergyIn breaks Energy down by power state (zero-duration transition
	// impulses count toward the transition state entered).
	EnergyIn [core.StateSpinDown + 1]float64
}

// Total returns the total accounted wall time.
func (s Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.TimeIn {
		t += d
	}
	return t
}

// StandbyFraction returns the fraction of time spent in standby, the
// paper's per-disk sort key in Figures 9 and 17.
func (s Stats) StandbyFraction() float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.TimeIn[core.StateStandby]) / float64(total)
}
