package diskmodel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/simkernel"
)

func TestDisciplineString(t *testing.T) {
	t.Parallel()
	if FIFO.String() != "fifo" || SSTF.String() != "sstf" || SCAN.String() != "scan" {
		t.Error("discipline names wrong")
	}
	if Discipline(9).String() != "Discipline(9)" {
		t.Error("unknown discipline name wrong")
	}
	if Discipline(9).Valid() || Discipline(0).Valid() {
		t.Error("invalid disciplines report valid")
	}
}

func mkQueue(lbas ...int64) []core.Request {
	q := make([]core.Request, len(lbas))
	for i, lba := range lbas {
		q[i] = core.Request{ID: core.RequestID(i), LBA: lba}
	}
	return q
}

func TestPickNextFIFO(t *testing.T) {
	t.Parallel()
	q := mkQueue(500, 100, 900)
	req, rest, _ := pickNext(FIFO, q, 450, true)
	if req.LBA != 500 || len(rest) != 2 {
		t.Errorf("FIFO picked LBA %d", req.LBA)
	}
}

func TestPickNextSSTF(t *testing.T) {
	t.Parallel()
	q := mkQueue(500, 100, 900)
	req, rest, _ := pickNext(SSTF, q, 120, true)
	if req.LBA != 100 {
		t.Errorf("SSTF picked LBA %d, want 100 (closest to head 120)", req.LBA)
	}
	if len(rest) != 2 || rest[0].LBA != 500 || rest[1].LBA != 900 {
		t.Errorf("rest = %v", rest)
	}
}

func TestPickNextSSTFUnknownHead(t *testing.T) {
	t.Parallel()
	// Head position -1 (unknown): all distances tie, first wins.
	q := mkQueue(500, 100)
	req, _, _ := pickNext(SSTF, q, -1, true)
	if req.LBA != 500 {
		t.Errorf("picked LBA %d, want first (tie)", req.LBA)
	}
}

func TestPickNextSCANSweepsAndReverses(t *testing.T) {
	t.Parallel()
	q := mkQueue(500, 100, 900)
	// Ascending from 450: next is 500, then 900, then reverse to 100.
	var order []int64
	head := int64(450)
	asc := true
	for len(q) > 0 {
		var req core.Request
		req, q, asc = pickNext(SCAN, q, head, asc)
		order = append(order, req.LBA)
		head = req.LBA
	}
	want := []int64{500, 900, 100}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SCAN order = %v, want %v", order, want)
		}
	}
	if asc {
		t.Error("direction did not flip after reaching the top")
	}
}

func TestPickNextPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty queue")
		}
	}()
	pickNext(FIFO, nil, 0, true)
}

// Property: every discipline serves each queued request exactly once and
// never invents requests.
func TestDisciplinesServeAllProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, n uint8, discRaw uint8) bool {
		disc := Discipline(int(discRaw)%3 + 1)
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%12 + 1
		lbas := make([]int64, count)
		for i := range lbas {
			lbas[i] = rng.Int63n(1 << 20)
		}
		q := mkQueue(lbas...)
		head := int64(rng.Int63n(1 << 20))
		asc := true
		var served []int
		for len(q) > 0 {
			var req core.Request
			req, q, asc = pickNext(disc, q, head, asc)
			served = append(served, int(req.ID))
			head = req.LBA
		}
		if len(served) != count {
			return false
		}
		sort.Ints(served)
		for i, id := range served {
			if id != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// SSTF should yield lower total seek time than FIFO on a random backlog.
func TestSSTFBeatsFIFOSeekTime(t *testing.T) {
	t.Parallel()
	mech := Cheetah15K5()
	rng := rand.New(rand.NewSource(9))
	lbas := make([]int64, 64)
	for i := range lbas {
		lbas[i] = rng.Int63n(mech.MaxLBA)
	}
	totalSeek := func(disc Discipline) time.Duration {
		q := mkQueue(lbas...)
		head := int64(0)
		asc := true
		var total time.Duration
		for len(q) > 0 {
			var req core.Request
			req, q, asc = pickNext(disc, q, head, asc)
			total += mech.SeekTime(head, req.LBA)
			head = req.LBA
		}
		return total
	}
	fifo, sstf, scan := totalSeek(FIFO), totalSeek(SSTF), totalSeek(SCAN)
	if sstf >= fifo {
		t.Errorf("SSTF total seek %v not below FIFO %v", sstf, fifo)
	}
	if scan >= fifo {
		t.Errorf("SCAN total seek %v not below FIFO %v", scan, fifo)
	}
}

// End-to-end: a disk with a deep queue completes sooner under SSTF.
func TestDiskDisciplineEndToEnd(t *testing.T) {
	t.Parallel()
	run := func(disc Discipline) time.Duration {
		var eng simkernel.Engine
		pcfg := power.DefaultConfig()
		var last time.Duration
		d, err := New(0, Cheetah15K5(), pcfg, power.TwoCompetitive{Config: pcfg}, &eng,
			func(_ core.Request, at time.Duration) { last = at },
			Options{Discipline: disc})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		eng.At(0, func(time.Duration) {
			for i := 0; i < 100; i++ {
				d.Submit(core.Request{ID: core.RequestID(i), LBA: rng.Int63n(Cheetah15K5().MaxLBA)})
			}
		})
		eng.Run()
		d.Close()
		return last
	}
	fifo := run(FIFO)
	sstf := run(SSTF)
	if sstf >= fifo {
		t.Errorf("SSTF drain time %v not below FIFO %v", sstf, fifo)
	}
}

func TestNewRejectsInvalidDiscipline(t *testing.T) {
	t.Parallel()
	var eng simkernel.Engine
	_, err := New(0, Cheetah15K5(), power.DefaultConfig(), power.AlwaysOn{}, &eng, nil,
		Options{Discipline: Discipline(42)})
	if err == nil {
		t.Error("accepted invalid discipline")
	}
}
