// Package diskmodel simulates a single rotating disk: an analytic
// seek/rotation/transfer service-time model (replacing DiskSim in the
// paper's setup, Section 4) and an event-driven power-state machine
// (standby / spin-up / idle / active / spin-down) governed by a
// power.Policy.
package diskmodel

import (
	"fmt"
	"math"
	"time"
)

// MechConfig describes disk mechanics for the service-time model.
type MechConfig struct {
	RPM          float64       // spindle speed
	MinSeek      time.Duration // track-to-track seek
	MaxSeek      time.Duration // full-stroke seek
	TransferRate float64       // sustained bytes/second
	MaxLBA       int64         // addressable logical blocks (512 B sectors)
	SectorSize   int64         // bytes per logical block
	DefaultIO    int64         // request size when a request carries none
}

// Cheetah15K5 returns mechanics approximating the Seagate Cheetah 15K.5
// enterprise disk simulated in the paper (15000 RPM, ~3.5/7.4 ms seeks,
// ~125 MB/s sustained transfer, 300 GB).
func Cheetah15K5() MechConfig {
	return MechConfig{
		RPM:          15000,
		MinSeek:      400 * time.Microsecond,
		MaxSeek:      7400 * time.Microsecond,
		TransferRate: 125e6,
		MaxLBA:       586072368, // ~300 GB of 512 B sectors
		SectorSize:   512,
		DefaultIO:    512 << 10, // paper: file blocks are normally 512 KB
	}
}

// Validate reports whether the mechanics are physically sensible.
func (c MechConfig) Validate() error {
	switch {
	case c.RPM <= 0 || math.IsNaN(c.RPM):
		return fmt.Errorf("diskmodel: invalid RPM %v", c.RPM)
	case c.MinSeek < 0 || c.MaxSeek < c.MinSeek:
		return fmt.Errorf("diskmodel: invalid seek range [%s,%s]", c.MinSeek, c.MaxSeek)
	case c.TransferRate <= 0:
		return fmt.Errorf("diskmodel: invalid transfer rate %v", c.TransferRate)
	case c.MaxLBA <= 0 || c.SectorSize <= 0:
		return fmt.Errorf("diskmodel: invalid geometry lba=%d sector=%d", c.MaxLBA, c.SectorSize)
	case c.DefaultIO <= 0:
		return fmt.Errorf("diskmodel: invalid default I/O size %d", c.DefaultIO)
	}
	return nil
}

// rotation returns the duration of one full platter revolution.
func (c MechConfig) rotation() time.Duration {
	return time.Duration(60 / c.RPM * float64(time.Second))
}

// MinServiceTime returns the mechanical lower bound on any request's
// service time: the mean rotational latency (half a revolution), which
// every request pays regardless of seek distance or transfer size. Runtime
// verifiers use it as the floor below which a completion latency is
// physically impossible.
func (c MechConfig) MinServiceTime() time.Duration {
	return c.rotation() / 2
}

// SeekTime models seek duration between two LBAs with the standard
// square-root profile: short moves near MinSeek, full-stroke moves at
// MaxSeek.
func (c MechConfig) SeekTime(fromLBA, toLBA int64) time.Duration {
	if fromLBA < 0 || toLBA < 0 {
		return c.MaxSeek
	}
	dist := fromLBA - toLBA
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / float64(c.MaxLBA))
	if frac > 1 {
		frac = 1
	}
	return c.MinSeek + time.Duration(frac*float64(c.MaxSeek-c.MinSeek))
}

// ServiceTime returns the time to service a request of size bytes at lba,
// with the head previously at prevLBA (negative for unknown): seek + mean
// rotational latency (half a revolution) + transfer. A non-positive size
// uses the configured default.
func (c MechConfig) ServiceTime(prevLBA, lba, size int64) time.Duration {
	if size <= 0 {
		size = c.DefaultIO
	}
	seek := c.SeekTime(prevLBA, lba)
	rot := c.rotation() / 2
	xfer := time.Duration(float64(size) / c.TransferRate * float64(time.Second))
	return seek + rot + xfer
}

// mechTab is MechConfig compiled for the per-request hot path: every
// quantity that does not depend on the request — the float conversions, the
// half-revolution latency, the default-size transfer time — is evaluated
// once, so serviceTime costs one sqrt and one multiply per request. Each
// derived value is computed with exactly the expressions ServiceTime uses,
// keeping results bit-identical (TestMechTabMatchesConfig pins this).
type mechTab struct {
	minSeek     time.Duration
	maxSeek     time.Duration
	seekSpan    float64 // float64(MaxSeek - MinSeek)
	fMaxLBA     float64 // float64(MaxLBA)
	rotHalf     time.Duration
	defaultXfer time.Duration
	rate        float64
}

func (c MechConfig) compile() mechTab {
	return mechTab{
		minSeek:     c.MinSeek,
		maxSeek:     c.MaxSeek,
		seekSpan:    float64(c.MaxSeek - c.MinSeek),
		fMaxLBA:     float64(c.MaxLBA),
		rotHalf:     c.rotation() / 2,
		defaultXfer: time.Duration(float64(c.DefaultIO) / c.TransferRate * float64(time.Second)),
		rate:        c.TransferRate,
	}
}

func (t *mechTab) seekTime(fromLBA, toLBA int64) time.Duration {
	if fromLBA < 0 || toLBA < 0 {
		return t.maxSeek
	}
	dist := fromLBA - toLBA
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / t.fMaxLBA)
	if frac > 1 {
		frac = 1
	}
	return t.minSeek + time.Duration(frac*t.seekSpan)
}

func (t *mechTab) serviceTime(prevLBA, lba, size int64) time.Duration {
	xfer := t.defaultXfer
	if size > 0 {
		xfer = time.Duration(float64(size) / t.rate * float64(time.Second))
	}
	return t.seekTime(prevLBA, lba) + t.rotHalf + xfer
}
