package diskmodel

import (
	"fmt"

	"repro/internal/core"
)

// Discipline selects the order in which a disk drains its queue. The
// paper's evaluation uses DiskSim's default queueing; FIFO is our default,
// with SSTF and SCAN available for service-time ablations (see
// BenchmarkAblationQueueDiscipline).
type Discipline int

// Queue disciplines.
const (
	// FIFO serves requests in arrival order.
	FIFO Discipline = iota + 1
	// SSTF serves the request with the shortest seek from the current
	// head position.
	SSTF
	// SCAN sweeps the head across the platter, serving requests in LBA
	// order in the current direction and reversing at the last one (the
	// classic elevator algorithm).
	SCAN
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case SSTF:
		return "sstf"
	case SCAN:
		return "scan"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Valid reports whether d is a defined discipline.
func (d Discipline) Valid() bool { return d >= FIFO && d <= SCAN }

// pickNext removes and returns the next request to serve from the queue
// according to the discipline, given the current head position and sweep
// direction. It returns the chosen request, the remaining queue, and the
// possibly-flipped direction. The disk hot path uses pickIndex over its
// reusable queue buffer instead; this allocating form remains for tests and
// standalone use.
func pickNext(disc Discipline, queue []core.Request, headLBA int64, ascending bool) (core.Request, []core.Request, bool) {
	pick, ascending := pickIndex(disc, queue, headLBA, ascending)
	req := queue[pick]
	rest := append(queue[:pick:pick], queue[pick+1:]...)
	return req, rest, ascending
}

// pickIndex selects the index of the next request to serve without mutating
// the queue, returning the pick and the possibly-flipped sweep direction.
func pickIndex(disc Discipline, queue []core.Request, headLBA int64, ascending bool) (int, bool) {
	if len(queue) == 0 {
		panic("diskmodel: pickNext on empty queue")
	}
	pick := 0
	switch disc {
	case FIFO:
		// Arrival order: the queue head.
	case SSTF:
		best := seekDistance(queue[0].LBA, headLBA)
		for i := 1; i < len(queue); i++ {
			if d := seekDistance(queue[i].LBA, headLBA); d < best {
				best, pick = d, i
			}
		}
	case SCAN:
		pick = -1
		// Nearest request at or beyond the head in the sweep direction.
		var bestAhead int64 = -1
		for i, r := range queue {
			ahead := r.LBA >= headLBA
			if !ascending {
				ahead = r.LBA <= headLBA
			}
			if !ahead {
				continue
			}
			d := seekDistance(r.LBA, headLBA)
			if bestAhead < 0 || d < bestAhead {
				bestAhead, pick = d, i
			}
		}
		if pick < 0 {
			// Nothing ahead: reverse the sweep.
			ascending = !ascending
			var best int64 = -1
			for i, r := range queue {
				d := seekDistance(r.LBA, headLBA)
				if best < 0 || d < best {
					best, pick = d, i
				}
			}
		}
	default:
		panic(fmt.Sprintf("diskmodel: invalid discipline %v", disc))
	}
	return pick, ascending
}

func seekDistance(a, b int64) int64 {
	if b < 0 {
		// Unknown head position: all requests equally far.
		return 0
	}
	if a > b {
		return a - b
	}
	return b - a
}
