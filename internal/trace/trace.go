// Package trace reads and writes block-level I/O traces in the two formats
// used by the paper's evaluation (Section 4.1): the SPC format of the UMass
// repository (Financial1) and a whitespace text rendering of HP's SRT
// format (Cello). It also converts trace records into the simulator's
// request stream, reproducing the paper's preprocessing: writes are dropped
// (handled by write off-loading, Section 2.1) and each unique (device, LBA)
// pair becomes one block.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Record is one trace line: a block I/O at a point in time.
type Record struct {
	Time   time.Duration
	Device int   // application storage unit / device number
	LBA    int64 // logical block address
	Size   int64 // bytes
	Write  bool
}

// ErrFormat reports a malformed trace line.
var ErrFormat = errors.New("trace: malformed record")

// ReadSPC parses the SPC trace format used by the UMass storage repository:
// comma-separated "ASU,LBA,Size,Opcode,Timestamp" lines, timestamps in
// seconds. Blank lines are skipped; any extra trailing fields are ignored
// (real SPC traces carry optional columns).
func ReadSPC(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 5 {
			return nil, fmt.Errorf("%w: line %d: want 5 comma-separated fields, got %d", ErrFormat, line, len(fields))
		}
		rec, err := parseSPCFields(fields)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading SPC: %w", err)
	}
	return recs, nil
}

func parseSPCFields(fields []string) (Record, error) {
	var rec Record
	asu, err := strconv.Atoi(strings.TrimSpace(fields[0]))
	if err != nil {
		return rec, fmt.Errorf("ASU: %v", err)
	}
	lba, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil {
		return rec, fmt.Errorf("LBA: %v", err)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
	if err != nil {
		return rec, fmt.Errorf("size: %v", err)
	}
	op := strings.ToUpper(strings.TrimSpace(fields[3]))
	if op != "R" && op != "W" {
		return rec, fmt.Errorf("opcode %q", fields[3])
	}
	ts, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
	if err != nil {
		return rec, fmt.Errorf("timestamp: %v", err)
	}
	if ts < 0 || size < 0 || lba < 0 || asu < 0 {
		return rec, fmt.Errorf("negative field in %v", fields[:5])
	}
	rec = Record{
		Time:   time.Duration(ts * float64(time.Second)),
		Device: asu,
		LBA:    lba,
		Size:   size,
		Write:  op == "W",
	}
	return rec, nil
}

// WriteSPC writes records in SPC format.
func WriteSPC(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		op := "R"
		if rec.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%.6f\n",
			rec.Device, rec.LBA, rec.Size, op, rec.Time.Seconds()); err != nil {
			return fmt.Errorf("trace: writing SPC: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCelloText parses the whitespace text rendering of HP SRT traces:
// "<seconds> <device> <lba> <bytes> <R|W>" per line. Lines starting with
// '#' are comments.
func ReadCelloText(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return nil, fmt.Errorf("%w: line %d: want 5 fields, got %d", ErrFormat, line, len(fields))
		}
		ts, err1 := strconv.ParseFloat(fields[0], 64)
		dev, err2 := strconv.Atoi(fields[1])
		lba, err3 := strconv.ParseInt(fields[2], 10, 64)
		size, err4 := strconv.ParseInt(fields[3], 10, 64)
		op := strings.ToUpper(fields[4])
		if err := errors.Join(err1, err2, err3, err4); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
		}
		if op != "R" && op != "W" {
			return nil, fmt.Errorf("%w: line %d: opcode %q", ErrFormat, line, fields[4])
		}
		if ts < 0 || lba < 0 || size < 0 || dev < 0 {
			return nil, fmt.Errorf("%w: line %d: negative field", ErrFormat, line)
		}
		recs = append(recs, Record{
			Time:   time.Duration(ts * float64(time.Second)),
			Device: dev,
			LBA:    lba,
			Size:   size,
			Write:  op == "W",
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading cello text: %w", err)
	}
	return recs, nil
}

// WriteCelloText writes records in the text SRT rendering.
func WriteCelloText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		op := "R"
		if rec.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%.6f %d %d %d %s\n",
			rec.Time.Seconds(), rec.Device, rec.LBA, rec.Size, op); err != nil {
			return fmt.Errorf("trace: writing cello text: %w", err)
		}
	}
	return bw.Flush()
}

// ConvertOptions controls trace-to-request conversion.
type ConvertOptions struct {
	// MaxRequests truncates the stream after this many read requests
	// (0 = unlimited). The paper uses the first 70,000.
	MaxRequests int
	// KeepWrites includes write records as requests. The paper drops
	// writes (handled by write off-loading); leave false to match it.
	KeepWrites bool
}

// ToRequests converts trace records into a simulator request stream sorted
// by time, with dense request IDs and dense BlockIDs assigned in order of
// first appearance of each unique (device, LBA) pair. It returns the stream
// and the number of distinct blocks.
func ToRequests(recs []Record, opts ConvertOptions) ([]core.Request, int) {
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	type key struct {
		dev int
		lba int64
	}
	blocks := make(map[key]core.BlockID)
	var reqs []core.Request
	var start time.Duration
	first := true
	for _, rec := range sorted {
		if rec.Write && !opts.KeepWrites {
			continue
		}
		if opts.MaxRequests > 0 && len(reqs) >= opts.MaxRequests {
			break
		}
		if first {
			start = rec.Time
			first = false
		}
		k := key{rec.Device, rec.LBA}
		b, ok := blocks[k]
		if !ok {
			b = core.BlockID(len(blocks))
			blocks[k] = b
		}
		reqs = append(reqs, core.Request{
			ID:      core.RequestID(len(reqs)),
			Block:   b,
			Arrival: rec.Time - start,
			Size:    rec.Size,
			LBA:     rec.LBA,
		})
	}
	return reqs, len(blocks)
}

// FromRequests renders a request stream back into trace records (all
// reads, device 0), enabling round-trips through the on-disk formats.
func FromRequests(reqs []core.Request) []Record {
	recs := make([]Record, len(reqs))
	for i, r := range reqs {
		recs[i] = Record{
			Time: r.Arrival,
			LBA:  r.LBA,
			Size: r.Size,
		}
	}
	return recs
}
