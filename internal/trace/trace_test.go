package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const spcSample = `0,20941264,8192,W,0.551706
0,20939840,8192,R,0.554041

1,3436288,15872,r,1.249948
`

func TestReadSPC(t *testing.T) {
	t.Parallel()
	recs, err := ReadSPC(strings.NewReader(spcSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3 (blank line skipped)", len(recs))
	}
	want := Record{
		Time: time.Duration(0.551706 * float64(time.Second)), Device: 0,
		LBA: 20941264, Size: 8192, Write: true,
	}
	if recs[0] != want {
		t.Errorf("first record = %+v, want %+v", recs[0], want)
	}
	if recs[2].Write {
		t.Error("lowercase 'r' parsed as write")
	}
	if recs[2].Device != 1 {
		t.Errorf("device = %d, want 1", recs[2].Device)
	}
}

func TestReadSPCIgnoresExtraColumns(t *testing.T) {
	t.Parallel()
	recs, err := ReadSPC(strings.NewReader("2,100,512,R,1.5,extra,columns\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LBA != 100 {
		t.Errorf("recs = %+v", recs)
	}
}

func TestReadSPCErrors(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		line string
	}{
		{"too few fields", "1,2,3,R"},
		{"bad asu", "x,2,3,R,1.0"},
		{"bad lba", "1,x,3,R,1.0"},
		{"bad size", "1,2,x,R,1.0"},
		{"bad opcode", "1,2,3,Q,1.0"},
		{"bad timestamp", "1,2,3,R,x"},
		{"negative timestamp", "1,2,3,R,-1.0"},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := ReadSPC(strings.NewReader(tc.line + "\n"))
			if !errors.Is(err, ErrFormat) {
				t.Errorf("err = %v, want ErrFormat", err)
			}
		})
	}
}

func TestReadCelloText(t *testing.T) {
	t.Parallel()
	in := `# device trace
0.5 3 1024 4096 R
1.25 4 2048 8192 W
`
	recs, err := ReadCelloText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].Device != 3 || recs[0].LBA != 1024 || recs[0].Write {
		t.Errorf("first = %+v", recs[0])
	}
	if !recs[1].Write {
		t.Error("W not parsed as write")
	}
}

func TestReadCelloTextErrors(t *testing.T) {
	t.Parallel()
	for _, line := range []string{"0.5 3 1024 4096", "x 3 1 1 R", "0.5 3 1 1 Z", "-1 3 1 1 R"} {
		if _, err := ReadCelloText(strings.NewReader(line + "\n")); !errors.Is(err, ErrFormat) {
			t.Errorf("line %q: err = %v, want ErrFormat", line, err)
		}
	}
}

func randomRecords(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	now := time.Duration(0)
	for i := range recs {
		now += time.Duration(rng.Int63n(int64(time.Second)))
		recs[i] = Record{
			Time:   now,
			Device: rng.Intn(8),
			LBA:    rng.Int63n(1 << 30),
			Size:   int64(rng.Intn(1<<16) + 512),
			Write:  rng.Intn(2) == 0,
		}
	}
	return recs
}

// Property: write-then-read round-trips records through both formats
// (timestamps to microsecond precision).
func TestRoundTripProperty(t *testing.T) {
	t.Parallel()
	codecs := []struct {
		name  string
		write func(*bytes.Buffer, []Record) error
		read  func(*bytes.Buffer) ([]Record, error)
	}{
		{"spc",
			func(b *bytes.Buffer, r []Record) error { return WriteSPC(b, r) },
			func(b *bytes.Buffer) ([]Record, error) { return ReadSPC(b) }},
		{"cellotext",
			func(b *bytes.Buffer, r []Record) error { return WriteCelloText(b, r) },
			func(b *bytes.Buffer) ([]Record, error) { return ReadCelloText(b) }},
	}
	for _, codec := range codecs {
		codec := codec
		t.Run(codec.name, func(t *testing.T) {
			t.Parallel()
			f := func(seed int64, n uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				recs := randomRecords(rng, int(n)%40+1)
				var buf bytes.Buffer
				if err := codec.write(&buf, recs); err != nil {
					return false
				}
				got, err := codec.read(&buf)
				if err != nil || len(got) != len(recs) {
					return false
				}
				for i := range recs {
					a, b := recs[i], got[i]
					if a.Device != b.Device || a.LBA != b.LBA || a.Size != b.Size || a.Write != b.Write {
						return false
					}
					if d := a.Time - b.Time; d < -time.Microsecond || d > time.Microsecond {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestToRequestsDropsWritesAndAssignsBlocks(t *testing.T) {
	t.Parallel()
	recs := []Record{
		{Time: 2 * time.Second, Device: 0, LBA: 100, Size: 512},
		{Time: 1 * time.Second, Device: 0, LBA: 200, Size: 512},
		{Time: 3 * time.Second, Device: 0, LBA: 100, Size: 512, Write: true},
		{Time: 4 * time.Second, Device: 0, LBA: 100, Size: 512},
		{Time: 5 * time.Second, Device: 1, LBA: 100, Size: 512},
	}
	reqs, blocks := ToRequests(recs, ConvertOptions{})
	if len(reqs) != 4 {
		t.Fatalf("requests = %d, want 4 (write dropped)", len(reqs))
	}
	if blocks != 3 {
		t.Fatalf("blocks = %d, want 3 unique (device,LBA) pairs", blocks)
	}
	// Sorted by time and rebased to the first read.
	if reqs[0].Arrival != 0 || reqs[0].LBA != 200 {
		t.Errorf("first request = %+v, want the t=1s read rebased to 0", reqs[0])
	}
	// Same (device,LBA) maps to the same block; different device differs.
	if reqs[1].Block != reqs[2].Block {
		t.Error("same (device,LBA) mapped to different blocks")
	}
	if reqs[3].Block == reqs[1].Block {
		t.Error("different devices share a block")
	}
	for i, r := range reqs {
		if int(r.ID) != i {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
	}
}

func TestToRequestsKeepWritesAndLimit(t *testing.T) {
	t.Parallel()
	recs := []Record{
		{Time: 1 * time.Second, LBA: 1, Size: 512, Write: true},
		{Time: 2 * time.Second, LBA: 2, Size: 512},
		{Time: 3 * time.Second, LBA: 3, Size: 512},
	}
	reqs, _ := ToRequests(recs, ConvertOptions{KeepWrites: true})
	if len(reqs) != 3 {
		t.Errorf("KeepWrites: %d requests, want 3", len(reqs))
	}
	reqs, _ = ToRequests(recs, ConvertOptions{MaxRequests: 1})
	if len(reqs) != 1 || reqs[0].LBA != 2 {
		t.Errorf("MaxRequests: %+v", reqs)
	}
}

func TestFromRequestsRoundTrip(t *testing.T) {
	t.Parallel()
	recs := []Record{
		{Time: 1 * time.Second, LBA: 10, Size: 512},
		{Time: 2 * time.Second, LBA: 20, Size: 1024},
	}
	reqs, _ := ToRequests(recs, ConvertOptions{})
	back := FromRequests(reqs)
	if len(back) != 2 {
		t.Fatalf("len = %d", len(back))
	}
	if back[0].Time != 0 || back[1].Time != time.Second {
		t.Errorf("times = %v, %v (rebased)", back[0].Time, back[1].Time)
	}
	if back[0].LBA != 10 || back[1].LBA != 20 {
		t.Errorf("LBAs = %d, %d", back[0].LBA, back[1].LBA)
	}
}

func TestToRequestsEmpty(t *testing.T) {
	t.Parallel()
	reqs, blocks := ToRequests(nil, ConvertOptions{})
	if len(reqs) != 0 || blocks != 0 {
		t.Errorf("empty conversion: %v, %d", reqs, blocks)
	}
}
