package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The parsers face arbitrary user-supplied files; they must return errors,
// never panic, and anything they accept must round-trip.

func FuzzReadSPC(f *testing.F) {
	f.Add(spcSample)
	f.Add("0,20939840,8192,R,0.554041\n")
	f.Add("1,2,3,W,4.5,extra\n")
	f.Add(",,,,\n")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadSPC(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input: writing and re-reading must succeed and preserve
		// the record count.
		var buf bytes.Buffer
		if err := WriteSPC(&buf, recs); err != nil {
			t.Fatalf("WriteSPC on accepted records: %v", err)
		}
		again, err := ReadSPC(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(again), len(recs))
		}
	})
}

func FuzzReadCelloText(f *testing.F) {
	f.Add("0.5 3 1024 4096 R\n")
	f.Add("# comment\n1.25 4 2048 8192 W\n")
	f.Add("x y z w Q\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadCelloText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCelloText(&buf, recs); err != nil {
			t.Fatalf("WriteCelloText on accepted records: %v", err)
		}
		again, err := ReadCelloText(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(again), len(recs))
		}
	})
}

func FuzzToRequests(f *testing.F) {
	f.Add(int64(5), int64(100), int64(512), false, uint8(3))
	f.Fuzz(func(t *testing.T, tm, lba, size int64, write bool, n uint8) {
		if tm < 0 || lba < 0 || size < 0 {
			return
		}
		recs := make([]Record, int(n)%16)
		for i := range recs {
			recs[i] = Record{
				Time:  timeDuration(tm * int64(i+1)),
				LBA:   lba + int64(i),
				Size:  size,
				Write: write && i%2 == 0,
			}
		}
		reqs, blocks := ToRequests(recs, ConvertOptions{})
		if blocks < 0 || len(reqs) > len(recs) {
			t.Fatalf("blocks=%d reqs=%d recs=%d", blocks, len(reqs), len(recs))
		}
		for i := 1; i < len(reqs); i++ {
			if reqs[i].Arrival < reqs[i-1].Arrival {
				t.Fatal("requests not sorted")
			}
		}
	})
}

// timeDuration converts a raw nanosecond count, clamping negatives.
func timeDuration(ns int64) time.Duration {
	if ns < 0 {
		return 0
	}
	return time.Duration(ns)
}
