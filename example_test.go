package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// The paper's worked example (Figures 2-4): four disks, six requests, the
// toy power model. The exact MWIS pipeline recovers the optimal offline
// schedule with energy 19.
func ExampleSolveOfflineExact() {
	plc, err := repro.NewPlacement(4, [][]repro.DiskID{
		{0},       // b1 on d1
		{0, 1},    // b2 on d1,d2
		{0, 1, 3}, // b3 on d1,d2,d4
		{2, 3},    // b4 on d3,d4
		{0, 3},    // b5 on d1,d4
		{2, 3},    // b6 on d3,d4
	})
	if err != nil {
		panic(err)
	}
	times := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second, 12 * time.Second, 13 * time.Second}
	reqs := make([]repro.Request, 6)
	for i := range reqs {
		reqs[i] = repro.Request{ID: repro.RequestID(i), Block: repro.BlockID(i), Arrival: times[i]}
	}
	_, stats, err := repro.SolveOfflineExact(reqs, plc.Locations, repro.ToyPowerConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal offline energy: %.0f units\n", stats.Energy)
	// Output: optimal offline energy: 19 units
}

// Evaluating a hand-written schedule under the analytic offline model:
// schedule B of Figure 3 costs 23 units.
func ExampleEvaluateSchedule() {
	plc, _ := repro.NewPlacement(4, [][]repro.DiskID{
		{0}, {0, 1}, {0, 1, 3}, {2, 3}, {0, 3}, {2, 3},
	})
	times := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second, 12 * time.Second, 13 * time.Second}
	reqs := make([]repro.Request, 6)
	for i := range reqs {
		reqs[i] = repro.Request{ID: repro.RequestID(i), Block: repro.BlockID(i), Arrival: times[i]}
	}
	scheduleB := repro.Schedule{0, 0, 0, 2, 0, 2}
	stats, err := repro.EvaluateSchedule(reqs, scheduleB, repro.ToyPowerConfig(), plc.Locations)
	if err != nil {
		panic(err)
	}
	fmt.Printf("schedule B energy: %.0f units\n", stats.Energy)
	// Output: schedule B energy: 23 units
}

// Running the full event-driven simulator with the energy-aware online
// scheduler.
func ExampleRunOnline() {
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks: 12, NumBlocks: 500, ReplicationFactor: 3, ZipfExponent: 1, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	reqs := repro.CelloLike(1000, 500, 1)
	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = 12
	res, err := repro.RunOnline(cfg, plc.Locations,
		repro.NewHeuristicScheduler(plc.Locations, repro.DefaultCost(cfg.Power)), reqs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d requests, energy below always-on: %v\n",
		res.Served, res.NormalizedEnergy() < 1)
	// Output: served 1000 requests, energy below always-on: true
}

// The breakeven threshold of the default power model, the quantity 2CPM is
// built on.
func ExamplePowerConfig() {
	cfg := repro.DefaultPowerConfig()
	fmt.Printf("T_B = E_up/down / P_I = %.0f J / %.1f W = %.1f s\n",
		cfg.UpDownEnergy(), cfg.IdlePower, cfg.Breakeven().Seconds())
	// Output: T_B = E_up/down / P_I = 148 J / 9.3 W = 15.9 s
}

// Single-disk power management: the fixed breakeven threshold is
// 2-competitive against the offline oracle.
func ExampleCompetitiveRatio() {
	cfg := repro.DefaultPowerConfig()
	tau := repro.OptimalGapThreshold(cfg)
	// The adversarial gap: just past the threshold.
	gaps := []time.Duration{tau + time.Millisecond}
	ratio := repro.CompetitiveRatio(cfg, gaps, repro.FixedGapPolicy(tau))
	fmt.Printf("worst-case ratio <= 2: %v\n", ratio <= 2)
	// Output: worst-case ratio <= 2: true
}
