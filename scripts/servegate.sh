#!/bin/sh
# servegate.sh — serving-path gate (part of `make ci`).
#
# Boots a real eschedd daemon with the event tracer and live doctor
# monitors attached, drives it with a short loadgen burst (compact batch
# endpoint), probes /healthz and /metrics, drains it with SIGTERM, and then
# replays the emitted event log offline through `tracelens doctor` — the
# same invariant suite the batch path is held to: power-state legality,
# bit-exact energy conservation, request conservation, replica validity,
# 2CPM threshold compliance and latency sanity. Non-zero exit (set -e) on
# any probe failure, loadgen transport failure, daemon drain error (the
# daemon itself exits non-zero on a live doctor violation), or offline
# doctor violation.
#
# The daemon runs with -shards 4: four per-rack decision shards over the
# rack-local placement, so the gate exercises the sharded admission rings,
# the flat-combined decision loops and the journal merge — and the offline
# doctor proves the merged log is indistinguishable from a serial run's.
#
# Usage: scripts/servegate.sh
#   SERVE_DISKS / SERVE_BLOCKS / SERVE_REQUESTS / SERVE_SEED / SERVE_SHARDS
#   override the gate's shape (defaults: 32 disks, 2000 blocks, 5000
#   requests, seed 7, 4 shards).

set -eu

cd "$(dirname "$0")/.."

disks="${SERVE_DISKS:-32}"
blocks="${SERVE_BLOCKS:-2000}"
requests="${SERVE_REQUESTS:-5000}"
seed="${SERVE_SEED:-7}"
shards="${SERVE_SHARDS:-4}"

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -KILL "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/eschedd" ./cmd/eschedd
go build -o "$tmp/tracelens" ./cmd/tracelens

echo "servegate: booting eschedd (disks=$disks blocks=$blocks seed=$seed shards=$shards, -events -doctor)..." >&2
"$tmp/eschedd" serve -addr 127.0.0.1:0 -addrfile "$tmp/addr" \
	-disks "$disks" -blocks "$blocks" -rf 3 -z 1 -seed "$seed" \
	-shards "$shards" \
	-events "$tmp/run.jsonl" -metrics "$tmp/metrics.txt" -doctor \
	>"$tmp/daemon.out" 2>"$tmp/daemon.err" &
daemon_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "servegate: daemon did not bind within 10s" >&2
		cat "$tmp/daemon.err" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "servegate: daemon exited during startup" >&2
		cat "$tmp/daemon.err" >&2
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmp/addr")"

echo "servegate: loadgen burst ($requests requests against $addr)..." >&2
"$tmp/eschedd" loadgen -addr "$addr" -requests "$requests" \
	-blocks "$blocks" -seed "$seed" -conns 8 -batch 16 >&2

echo "servegate: probing /healthz and /metrics..." >&2
"$tmp/eschedd" probe -addr "$addr" >&2

echo "servegate: draining daemon (SIGTERM)..." >&2
kill -TERM "$daemon_pid"
drain_rc=0
wait "$daemon_pid" || drain_rc=$?
daemon_pid=""
if [ "$drain_rc" -ne 0 ]; then
	echo "servegate: daemon exited $drain_rc" >&2
	cat "$tmp/daemon.err" >&2
	exit 1
fi
cat "$tmp/daemon.out" >&2

echo "servegate: tracelens doctor over the serving log..." >&2
"$tmp/tracelens" doctor -disks "$disks" -blocks "$blocks" \
	-rf 3 -z 1 -seed "$seed" -shards "$shards" "$tmp/run.jsonl" >&2

echo "servegate: OK — live run healthy, drained clean, log doctor-clean" >&2
