#!/bin/sh
# bench.sh — benchmark-regression harness.
#
# Runs the tier-1 figure benchmarks (BenchmarkFigure*) plus the offline
# pipeline benchmark with -benchmem and records the result as
# BENCH_<date>.json in the repo root: a small JSON envelope with machine
# metadata and the raw `go test -bench` text embedded verbatim, so
#
#   benchstat <(jq -r .raw BENCH_old.json) <(jq -r .raw BENCH_new.json)
#
# (or any benchfmt consumer) can diff two recordings directly.
#
# Usage: scripts/bench.sh [output.json]
#   BENCH_PATTERN  regex of benchmarks to run
#                  (default 'Figure|OfflineMWISPipeline')
#   BENCH_TIME     per-benchmark time (default 1s)
#   BENCH_COUNT    repetitions for benchstat confidence (default 1)

set -eu

cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-Figure|OfflineMWISPipeline}"
benchtime="${BENCH_TIME:-1s}"
count="${BENCH_COUNT:-1}"
out="${1:-BENCH_$(date +%Y%m%d).json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running benchmarks matching '$pattern' (benchtime=$benchtime count=$count)..." >&2
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" . | tee "$tmp" >&2

# JSON-escape the raw benchfmt text (backslashes, quotes, tabs, newlines).
raw="$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' "$tmp" | awk '{printf "%s\\n", $0}')"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed -e 's/"/\\"/g')"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "count": %s,\n' "$count"
	printf '  "raw": "%s"\n' "$raw"
	printf '}\n'
} >"$out"

echo "wrote $out" >&2
