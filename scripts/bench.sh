#!/bin/sh
# bench.sh — benchmark-regression harness.
#
# Runs the tier-1 figure benchmarks (BenchmarkFigure*) plus the offline
# pipeline, trace-analyzer, live-doctor, carbon-attribution, serving
# (sharded throughput + hot submit), flight-recorder and span-overhead
# benchmarks with -benchmem and records the result as
# BENCH_<date>.json in the repo root: a small JSON envelope with machine
# metadata and the raw `go test -bench` text embedded verbatim, so
#
#   benchstat <(jq -r .raw BENCH_old.json) <(jq -r .raw BENCH_new.json)
#
# (or any benchfmt consumer) can diff two recordings directly.
#
# Usage: scripts/bench.sh [output.json]
#        scripts/bench.sh -check [baseline.json]
#   BENCH_PATTERN  regex of benchmarks to run
#                  (default 'Figure|OfflineMWISPipeline|AnalyzeReplay|DoctorLive|CarbonAttribution|SweepCached|KernelThroughput|Fleet100k|ServeThroughput|ServeSubmit|FlightRecorder|SpanOverhead')
#   BENCH_TIME     per-benchmark time (default 1s)
#   BENCH_COUNT    repetitions for benchstat confidence (default 1)
#   BENCH_TOL      -check wall-time tolerance as a fraction (default 0.25)
#   BENCH_ALLOC_TOL  -check allocs/op tolerance as a fraction (default 0.001)
#   BENCH_EVENTS_FLOOR  -check absolute events/sec floor for benchmarks
#                  reporting that metric (default 2000000)
#   BENCH_DECISIONS_FLOOR  -check absolute decisions/sec floor for the
#                  serving throughput benchmark, held at every shard count
#                  (default 1000000)
#   BENCH_EXACT_ALLOCS  -check regexp of benchmarks whose allocs/op must
#                  equal the baseline exactly — the instrumentation-off
#                  allocation-identity gate (default
#                  'FlightRecorder/off|SpanOverhead/off|ServeSubmit/off')
#   BENCH_ZERO_ALLOCS  -check regexp of benchmarks that must report exactly
#                  0 allocs/op, baseline-independent — the zero-alloc
#                  submit-path gate (default 'ServeSubmit/off')
#   BENCH_OVERHEAD_TOL  -check allowed wall-time overhead of the
#                  flight-recorder-on leg over its traced baseline
#                  (FlightRecorder/on vs /base). The design budget is <5%
#                  per event; the default 0.5 pads for single-run noise on
#                  shared machines, so the gate trips on a recorder costing
#                  multiples rather than on scheduler jitter.
#
# -check runs the same benchmarks but, instead of recording a snapshot,
# compares them against the newest BENCH_*.json (or the given baseline)
# with scripts/benchcheck: wall time must stay within BENCH_TOL and
# allocs/op within BENCH_ALLOC_TOL (tight enough that micro-benchmarks
# must match exactly), every benchmark reporting an events/sec metric
# (the kernel, fleet, replay, doctor and carbon benchmarks) must clear the
# BENCH_EVENTS_FLOOR absolute throughput floor, the serving benchmark
# (decisions/sec) must clear BENCH_DECISIONS_FLOOR at every shard count,
# the recorder-off / spans-off / submit hot paths must keep allocs/op
# byte-for-byte identical to the baseline (BENCH_EXACT_ALLOCS), the
# serving submit path must allocate nothing at all (BENCH_ZERO_ALLOCS),
# and the recorder-on leg must stay within BENCH_OVERHEAD_TOL of its
# traced baseline. Non-zero exit on regression — the `make ci` gate.

set -eu

cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-Figure|OfflineMWISPipeline|AnalyzeReplay|DoctorLive|CarbonAttribution|SweepCached|KernelThroughput|Fleet100k|ServeThroughput|ServeSubmit|FlightRecorder|SpanOverhead}"
benchtime="${BENCH_TIME:-1s}"
count="${BENCH_COUNT:-1}"

check=0
if [ "${1:-}" = "-check" ]; then
	check=1
	shift
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running benchmarks matching '$pattern' (benchtime=$benchtime count=$count)..." >&2
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" . | tee "$tmp" >&2

if [ "$check" = 1 ]; then
	baseline="${1:-$(ls BENCH_*.json 2>/dev/null | sort | tail -1)}"
	if [ -z "$baseline" ]; then
		echo "bench.sh: no BENCH_*.json baseline to check against" >&2
		exit 2
	fi
	echo "checking against $baseline (tol ${BENCH_TOL:-0.25}, alloctol ${BENCH_ALLOC_TOL:-0.001}, eventsfloor ${BENCH_EVENTS_FLOOR:-2000000}, decisionsfloor ${BENCH_DECISIONS_FLOOR:-1000000}, exactallocs ${BENCH_EXACT_ALLOCS:-FlightRecorder/off|SpanOverhead/off|ServeSubmit/off}, zeroallocs ${BENCH_ZERO_ALLOCS:-ServeSubmit/off}, overheadtol ${BENCH_OVERHEAD_TOL:-0.5})..." >&2
	exec go run ./scripts/benchcheck -baseline "$baseline" -new "$tmp" \
		-tol "${BENCH_TOL:-0.25}" -alloctol "${BENCH_ALLOC_TOL:-0.001}" \
		-eventsfloor "${BENCH_EVENTS_FLOOR:-2000000}" \
		-decisionsfloor "${BENCH_DECISIONS_FLOOR:-1000000}" \
		-exactallocs "${BENCH_EXACT_ALLOCS:-FlightRecorder/off|SpanOverhead/off|ServeSubmit/off}" \
		-zeroallocs "${BENCH_ZERO_ALLOCS:-ServeSubmit/off}" \
		-overheadtol "${BENCH_OVERHEAD_TOL:-0.5}"
fi

out="${1:-BENCH_$(date +%Y%m%d).json}"

# JSON-escape the raw benchfmt text (backslashes, quotes, tabs, newlines).
raw="$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' "$tmp" | awk '{printf "%s\\n", $0}')"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed -e 's/"/\\"/g')"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "count": %s,\n' "$count"
	printf '  "raw": "%s"\n' "$raw"
	printf '}\n'
} >"$out"

echo "wrote $out" >&2
