#!/bin/sh
# replaygate.sh — log-replay consistency gate (part of `make ci`).
#
# Records one seeded SmallScale-sized cell through the observability layer
# (esched -events -metrics), then requires the trace analytics engine to
# reconstruct the run from the log alone:
#
#   tracelens verify     the replayed collector must render a metrics
#                        export byte-identical to the one the live run
#                        wrote — every counter, histogram bucket and
#                        energy total, down to the float formatting;
#   tracelens attribute  the energy waterfall must account for 100 % of
#                        the measured joules bit-exactly against the
#                        power.Meter by-state totals in the export.
#
# The gate runs the same cell twice, streaming JSONL and the dense binary
# encoding, so a codec change that breaks either path fails CI. Non-zero
# exit (from set -e) on any mismatch.
#
# Usage: scripts/replaygate.sh
#   REPLAY_DISKS / REPLAY_REQUESTS / REPLAY_BLOCKS / REPLAY_SEED
#   override the cell size (defaults: 24 disks, 6000 requests, 2500
#   blocks, seed 7 — the SmallScale shape, a couple of seconds total).

set -eu

cd "$(dirname "$0")/.."

disks="${REPLAY_DISKS:-24}"
requests="${REPLAY_REQUESTS:-6000}"
blocks="${REPLAY_BLOCKS:-2500}"
seed="${REPLAY_SEED:-7}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/esched" ./cmd/esched
go build -o "$tmp/tracelens" ./cmd/tracelens

for enc in jsonl bin; do
	case "$enc" in
	jsonl) log="$tmp/run.events" ;;
	bin) log="$tmp/run.bin" ;;
	esac
	echo "replaygate: recording $enc cell (disks=$disks requests=$requests blocks=$blocks seed=$seed)..." >&2
	"$tmp/esched" -disks "$disks" -requests "$requests" -blocks "$blocks" \
		-rf 3 -seed "$seed" -scheduler heuristic \
		-events "$log" -metrics "$tmp/run.$enc.prom" >/dev/null

	echo "replaygate: tracelens verify ($enc)..." >&2
	"$tmp/tracelens" verify -metrics "$tmp/run.$enc.prom" "$log"

	echo "replaygate: tracelens attribute ($enc)..." >&2
	"$tmp/tracelens" attribute -metrics "$tmp/run.$enc.prom" "$log" >/dev/null
done

echo "replaygate: OK — both encodings replay to byte-identical exports" >&2
