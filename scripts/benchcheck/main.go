// Command benchcheck compares a fresh `go test -bench` run against a
// recorded BENCH_<date>.json envelope (see scripts/bench.sh) and exits
// non-zero when a benchmark regressed: wall time beyond the tolerance, or
// an increase in allocs/op beyond the allocation tolerance. It is the
// regression gate behind `scripts/bench.sh -check` and `make ci`.
//
// It also enforces one intra-run invariant: for every BenchmarkSweepCached
// cold/warm pair in the fresh run, the warm (memoized) sweep must be at
// least -cachespeedup times faster than the cold one, pinning the sweep
// cache's reason to exist rather than just its trend against a baseline.
//
// A second intra-run invariant gates kernel throughput: with -eventsfloor
// set, every fresh benchmark reporting an events/sec metric (the kernel
// and fleet benchmarks) must clear that absolute floor, independent of
// what the baseline recorded. -decisionsfloor does the same for the
// serving path: every fresh benchmark reporting a decisions/sec metric
// (BenchmarkServeThroughput) must clear the eschedd acceptance floor.
//
// -exactallocs names (by regexp) benchmarks whose allocs/op must match the
// baseline EXACTLY — zero tolerance, both directions. It pins allocation
// identity on observability-off hot paths (e.g. the flight-recorder-off
// run in BenchmarkFlightRecorder): even a single extra allocation per op
// means the disabled instrumentation leaks into the fast path.
//
// -zeroallocs is the absolute version of that pin: benchmarks matching the
// regexp must report exactly 0 allocs/op in the fresh run, independent of
// any baseline. It gates the serving engine's hot submit path
// (BenchmarkServeSubmit's collector-off leg): the ring-buffer admission
// and pooled pending records mean a steady-state submit must not touch
// the heap at all, and this check holds even on the first recorded run.
//
// -overheadtol gates instrumentation overhead inside the fresh run: every
// ".../on" benchmark with a ".../base" sibling (BenchmarkFlightRecorder's
// recorder-on vs traced-baseline pair) must run within the given fraction
// of its sibling's wall time. The design budget is <5% per event; the
// shipped tolerance is padded for single-run noise, so this check catches
// a recorder that suddenly costs multiples, not percent-level drift.
//
//	benchcheck -baseline BENCH_20260805.json -new bench.txt [-tol 0.25] [-alloctol 0.001] [-cachespeedup 50] [-eventsfloor 2000000] [-decisionsfloor 1000000] [-exactallocs REGEX] [-zeroallocs REGEX] [-overheadtol 0.5]
//
// Both inputs may be raw benchfmt text or a bench.sh JSON envelope (the
// envelope's "raw" field holds the text). Only benchmarks present in both
// inputs are compared; single-run wall times are noisy, so the default
// time tolerance is deliberately loose — tighten with -tol for quiet
// machines. Allocation counts are near-deterministic, so -alloctol is
// tight: 0.1% keeps micro-benchmarks exact (on a 130 allocs/op benchmark
// even +1 fails) while absorbing the handful of GC-timing-dependent
// runtime allocations that macro benchmarks (hundreds of thousands of
// allocs/op) pick up when unrelated code shifts heap trigger points.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	nsPerOp      float64
	allocsOp     float64
	hasAlloc     bool
	eventsSec    float64
	decisionsSec float64
}

func main() {
	baseline := flag.String("baseline", "", "recorded BENCH_*.json (or raw benchfmt text) to compare against")
	newRun := flag.String("new", "", "fresh benchmark output (raw text or envelope)")
	tol := flag.Float64("tol", 0.25, "allowed fractional wall-time increase per benchmark")
	allocTol := flag.Float64("alloctol", 0.001, "allowed fractional allocs/op increase per benchmark")
	cacheSpeedup := flag.Float64("cachespeedup", 50, "required cold/warm speedup for SweepCached pairs in the fresh run (0 disables)")
	eventsFloor := flag.Float64("eventsfloor", 0, "minimum events/sec for fresh benchmarks reporting that metric (0 disables)")
	decisionsFloor := flag.Float64("decisionsfloor", 0, "minimum decisions/sec for fresh benchmarks reporting that metric (0 disables)")
	exactAllocs := flag.String("exactallocs", "", "regexp of benchmarks whose allocs/op must equal the baseline exactly (empty disables)")
	zeroAllocs := flag.String("zeroallocs", "", "regexp of fresh benchmarks that must report exactly 0 allocs/op (empty disables)")
	overheadTol := flag.Float64("overheadtol", 0, "allowed fractional wall-time overhead of fresh '/on' benchmarks over their '/base' siblings (0 disables)")
	flag.Parse()
	if *baseline == "" || *newRun == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -new are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	fresh, err := load(*newRun)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	failed := false
	compared := 0
	for name, nb := range fresh {
		ob, ok := base[name]
		if !ok {
			continue
		}
		compared++
		ratio := nb.nsPerOp / ob.nsPerOp
		status := "ok"
		switch {
		case ratio > 1+*tol:
			status = fmt.Sprintf("FAIL time +%.1f%% (tol %.0f%%)", 100*(ratio-1), 100**tol)
			failed = true
		case nb.hasAlloc && ob.hasAlloc && nb.allocsOp > ob.allocsOp*(1+*allocTol):
			status = fmt.Sprintf("FAIL allocs %v -> %v", ob.allocsOp, nb.allocsOp)
			failed = true
		}
		fmt.Printf("%-60s %12.0f -> %12.0f ns/op (x%.3f)  %s\n",
			name, ob.nsPerOp, nb.nsPerOp, ratio, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no common benchmarks between inputs")
		os.Exit(2)
	}
	if !checkCacheSpeedup(fresh, *cacheSpeedup) {
		failed = true
	}
	if !checkEventsFloor(fresh, *eventsFloor) {
		failed = true
	}
	if !checkMetricFloor(fresh, *decisionsFloor, "decisions/sec",
		func(r result) float64 { return r.decisionsSec }) {
		failed = true
	}
	if !checkExactAllocs(base, fresh, *exactAllocs) {
		failed = true
	}
	if !checkZeroAllocs(fresh, *zeroAllocs) {
		failed = true
	}
	if !checkOverhead(fresh, *overheadTol) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within tolerance\n", compared)
}

// checkCacheSpeedup enforces the memoization invariant on the fresh run:
// every SweepCached ".../warm" result must be at least `speedup` times
// faster than its ".../cold" sibling. Returns false on violation.
func checkCacheSpeedup(fresh map[string]result, speedup float64) bool {
	if speedup <= 0 {
		return true
	}
	ok := true
	for name, cold := range fresh {
		if !strings.Contains(name, "SweepCached") || !strings.Contains(name, "/cold") {
			continue
		}
		warmName := strings.Replace(name, "/cold", "/warm", 1)
		warm, found := fresh[warmName]
		if !found || warm.nsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: %s has no usable warm sibling %s\n", name, warmName)
			ok = false
			continue
		}
		got := cold.nsPerOp / warm.nsPerOp
		status := "ok"
		if got < speedup {
			status = fmt.Sprintf("FAIL speedup %.1fx < required %.0fx", got, speedup)
			ok = false
		}
		fmt.Printf("%-60s %12.0f cold / %8.0f warm ns/op (%.0fx)  %s\n",
			warmName, cold.nsPerOp, warm.nsPerOp, got, status)
	}
	return ok
}

// checkEventsFloor enforces an absolute kernel-throughput floor on the
// fresh run: every benchmark reporting an events/sec metric must clear it.
// Unlike the relative wall-time gate this catches a slow creep that stays
// inside -tol run over run, and it holds even when the baseline predates
// the metric. Returns false on violation.
func checkEventsFloor(fresh map[string]result, floor float64) bool {
	if floor <= 0 {
		return true
	}
	ok := true
	for name, r := range fresh {
		if r.eventsSec <= 0 {
			continue
		}
		status := "ok"
		if r.eventsSec < floor {
			status = fmt.Sprintf("FAIL events/sec below floor %.0f", floor)
			ok = false
		}
		fmt.Printf("%-60s %12.0f events/sec  %s\n", name, r.eventsSec, status)
	}
	return ok
}

// checkExactAllocs pins allocation identity: every fresh benchmark whose
// name matches the pattern and that reports allocs/op must match the
// baseline's count exactly — zero tolerance in either direction. This is
// the instrumentation-off gate: a drifting count on a recorder-off or
// spans-off run means the disabled observability path started allocating.
// Returns false on violation (or an unusable pattern).
func checkExactAllocs(base, fresh map[string]result, pattern string) bool {
	if pattern == "" {
		return true
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: bad -exactallocs pattern: %v\n", err)
		return false
	}
	ok := true
	matched := 0
	for name, nb := range fresh {
		if !re.MatchString(name) || !nb.hasAlloc {
			continue
		}
		ob, found := base[name]
		if !found || !ob.hasAlloc {
			continue
		}
		matched++
		status := "ok"
		if nb.allocsOp != ob.allocsOp {
			status = fmt.Sprintf("FAIL allocs %v -> %v (exact match required)", ob.allocsOp, nb.allocsOp)
			ok = false
		}
		fmt.Printf("%-60s %12.0f == %12.0f allocs/op  %s\n", name, ob.allocsOp, nb.allocsOp, status)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: -exactallocs %q matched no benchmark with allocs in both inputs\n", pattern)
		return false
	}
	return ok
}

// checkZeroAllocs pins matching fresh benchmarks at exactly 0 allocs/op,
// with no baseline involved. Where checkExactAllocs freezes a count
// against history, this asserts the count itself: the serving engine's
// collector-off submit path recycles its pending records and admission
// slots, so any nonzero figure means the hot path regained a per-request
// heap allocation. Returns false on violation, a benchmark matching the
// pattern without alloc data, or no match at all (the gate must bite).
func checkZeroAllocs(fresh map[string]result, pattern string) bool {
	if pattern == "" {
		return true
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: bad -zeroallocs pattern: %v\n", err)
		return false
	}
	ok := true
	matched := 0
	for name, nb := range fresh {
		if !re.MatchString(name) {
			continue
		}
		if !nb.hasAlloc {
			fmt.Fprintf(os.Stderr, "benchcheck: %s matches -zeroallocs but reports no allocs/op\n", name)
			ok = false
			continue
		}
		matched++
		status := "ok"
		if nb.allocsOp != 0 {
			status = fmt.Sprintf("FAIL allocs %v != 0 (zero-alloc hot path required)", nb.allocsOp)
			ok = false
		}
		fmt.Printf("%-60s %12.0f allocs/op (must be 0)  %s\n", name, nb.allocsOp, status)
	}
	if matched == 0 && ok {
		fmt.Fprintf(os.Stderr, "benchcheck: -zeroallocs %q matched no benchmark in the fresh run\n", pattern)
		return false
	}
	return ok
}

// checkOverhead enforces the instrumentation-overhead pair invariant on
// the fresh run: every benchmark whose name contains "/on" and that has a
// "/base" sibling must stay within `tol` of the sibling's wall time. Both
// legs run back to back in the same process, so the comparison dodges the
// machine-to-machine drift the relative -tol gate has to absorb. Returns
// false on violation or when no pair exists (set 0 to disable when running
// a pattern that excludes the paired benchmarks).
func checkOverhead(fresh map[string]result, tol float64) bool {
	if tol <= 0 {
		return true
	}
	ok := true
	matched := 0
	for name, on := range fresh {
		if !strings.Contains(name, "/on") {
			continue
		}
		base, found := fresh[strings.Replace(name, "/on", "/base", 1)]
		if !found || base.nsPerOp <= 0 {
			continue
		}
		matched++
		got := on.nsPerOp / base.nsPerOp
		status := "ok"
		if got > 1+tol {
			status = fmt.Sprintf("FAIL overhead +%.1f%% > allowed %.0f%%", 100*(got-1), 100*tol)
			ok = false
		}
		fmt.Printf("%-60s %12.0f base / %8.0f on ns/op (x%.3f)  %s\n",
			name, base.nsPerOp, on.nsPerOp, got, status)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: -overheadtol set but no /on benchmark has a /base sibling")
		return false
	}
	return ok
}

// checkMetricFloor enforces an absolute per-metric floor on the fresh run:
// every benchmark reporting the named metric must clear it. The serving
// floor (decisions/sec) pins the eschedd acceptance criterion the same way
// checkEventsFloor pins kernel throughput. Returns false on violation.
func checkMetricFloor(fresh map[string]result, floor float64, metric string, get func(result) float64) bool {
	if floor <= 0 {
		return true
	}
	ok := true
	for name, r := range fresh {
		v := get(r)
		if v <= 0 {
			continue
		}
		status := "ok"
		if v < floor {
			status = fmt.Sprintf("FAIL %s below floor %.0f", metric, floor)
			ok = false
		}
		fmt.Printf("%-60s %12.0f %s  %s\n", name, v, metric, status)
	}
	return ok
}

// load reads benchfmt results from a raw text file or a bench.sh JSON
// envelope, keyed by full benchmark name (including the -N suffix).
func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		var env struct {
			Raw string `json:"raw"`
		}
		if err := json.Unmarshal(trimmed, &env); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		data = []byte(env.Raw)
	}
	out := map[string]result{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var r result
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
				ok = true
			case "allocs/op":
				r.allocsOp = v
				r.hasAlloc = true
			case "events/sec":
				r.eventsSec = v
			case "decisions/sec":
				r.decisionsSec = v
			}
		}
		if ok {
			out[fields[0]] = r
		}
	}
	return out, sc.Err()
}
