#!/bin/sh
# flightgate.sh — flight-recorder gate (part of `make ci`).
#
# Boots a real eschedd daemon with the always-on flight recorder armed and a
# deliberately unmeetable -flight-slo, drives a short loadgen burst so the
# first decided request breaches the SLO and freezes the recorder's window,
# drains the daemon, and then holds the dump to the replayability contract:
# `tracelens last` must decode the dump (trigger, window bounds, embedded
# kernel telemetry), `tracelens shards` must render the telemetry snapshot,
# and `tracelens doctor` must replay the dumped events.bin — a standard
# ESCHOBS2 log — with zero invariant violations (the window is a clean run
# prefix; the breach was an SLO event, not a correctness one). Non-zero exit
# (set -e) on a missing dump, an undecodable artifact, or a doctor
# violation in the replay.
#
# Usage: scripts/flightgate.sh
#   FLIGHT_DISKS / FLIGHT_BLOCKS / FLIGHT_REQUESTS / FLIGHT_SEED override
#   the gate's shape (defaults: 24 disks, 1500 blocks, 800 requests, seed 7).

set -eu

cd "$(dirname "$0")/.."

disks="${FLIGHT_DISKS:-24}"
blocks="${FLIGHT_BLOCKS:-1500}"
requests="${FLIGHT_REQUESTS:-800}"
seed="${FLIGHT_SEED:-7}"

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -KILL "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/eschedd" ./cmd/eschedd
go build -o "$tmp/tracelens" ./cmd/tracelens

echo "flightgate: booting eschedd (-flight, -flight-slo 1ns)..." >&2
"$tmp/eschedd" serve -addr 127.0.0.1:0 -addrfile "$tmp/addr" \
	-disks "$disks" -blocks "$blocks" -rf 3 -z 1 -seed "$seed" \
	-flight "$tmp/flight" -flight-slo 1ns \
	>"$tmp/daemon.out" 2>"$tmp/daemon.err" &
daemon_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "flightgate: daemon did not bind within 10s" >&2
		cat "$tmp/daemon.err" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "flightgate: daemon exited during startup" >&2
		cat "$tmp/daemon.err" >&2
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmp/addr")"

echo "flightgate: loadgen burst ($requests requests against $addr)..." >&2
"$tmp/eschedd" loadgen -addr "$addr" -requests "$requests" \
	-blocks "$blocks" -seed "$seed" -conns 4 -batch 8 >&2

echo "flightgate: draining daemon (SIGTERM)..." >&2
kill -TERM "$daemon_pid"
drain_rc=0
wait "$daemon_pid" || drain_rc=$?
daemon_pid=""
if [ "$drain_rc" -ne 0 ]; then
	echo "flightgate: daemon exited $drain_rc" >&2
	cat "$tmp/daemon.err" >&2
	exit 1
fi
grep "flight recorder wrote" "$tmp/daemon.err" >&2

dump="$(ls -d "$tmp"/flight/flight-* | sort | tail -1)"
if [ -z "$dump" ]; then
	echo "flightgate: no flight dump written" >&2
	exit 1
fi

echo "flightgate: tracelens last over $dump..." >&2
"$tmp/tracelens" last "$tmp/flight" >"$tmp/last.out"
cat "$tmp/last.out" >&2
grep -q "trigger       slo breach" "$tmp/last.out"
grep -q "kernel telemetry:" "$tmp/last.out"

echo "flightgate: tracelens shards over the dump telemetry..." >&2
"$tmp/tracelens" shards "$dump/telemetry.json" >&2

echo "flightgate: tracelens doctor replay of the dumped window..." >&2
"$tmp/tracelens" doctor -disks "$disks" -blocks "$blocks" \
	-rf 3 -z 1 -seed "$seed" "$dump/events.bin" >&2

echo "flightgate: OK — SLO breach dumped, window decodes, replay doctor-clean" >&2
