#!/bin/sh
# doctorgate.sh — runtime-invariant and paper-fidelity gate (part of
# `make ci`).
#
# Two independent certifications:
#
#   1. Invariant monitors over recorded logs. Records the same seeded
#      SmallScale-sized cell as the replay gate (esched -events, JSONL and
#      the dense binary encoding) and requires `tracelens doctor` to find
#      zero violations in either: power-state-machine legality, bit-exact
#      energy conservation, request conservation, replica validity, 2CPM
#      threshold compliance and latency sanity. The recording itself runs
#      with -doctor, so the live tee is exercised too.
#
#   2. Paper-fidelity scorecard. `tracelens doctor fidelity` regenerates
#      the seeded small-scale replication sweep (under live monitoring)
#      and scores every cell of Figures 6/7/8/13 against the committed
#      golden envelope (internal/experiments/envelopes.json). After a
#      deliberate, reviewed change to scheduling behavior, regenerate the
#      envelope with:
#
#          go run ./cmd/tracelens doctor fidelity -write internal/experiments/envelopes.json
#
# Non-zero exit (from set -e) on any violation or out-of-band cell.
#
# Usage: scripts/doctorgate.sh
#   DOCTOR_DISKS / DOCTOR_REQUESTS / DOCTOR_BLOCKS / DOCTOR_SEED override
#   the recorded cell (defaults: 24 disks, 6000 requests, 2500 blocks,
#   seed 7 — the replay gate's shape).

set -eu

cd "$(dirname "$0")/.."

disks="${DOCTOR_DISKS:-24}"
requests="${DOCTOR_REQUESTS:-6000}"
blocks="${DOCTOR_BLOCKS:-2500}"
seed="${DOCTOR_SEED:-7}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/esched" ./cmd/esched
go build -o "$tmp/tracelens" ./cmd/tracelens

for enc in jsonl bin; do
	case "$enc" in
	jsonl) log="$tmp/run.events" ;;
	bin) log="$tmp/run.bin" ;;
	esac
	echo "doctorgate: recording $enc cell with live -doctor (disks=$disks requests=$requests blocks=$blocks seed=$seed)..." >&2
	"$tmp/esched" -disks "$disks" -requests "$requests" -blocks "$blocks" \
		-rf 3 -seed "$seed" -scheduler heuristic -doctor \
		-events "$log" >/dev/null 2>"$tmp/live.$enc.report"

	echo "doctorgate: tracelens doctor ($enc)..." >&2
	"$tmp/tracelens" doctor -disks "$disks" -blocks "$blocks" \
		-rf 3 -z 1 -seed "$seed" "$log" >&2
done

echo "doctorgate: fidelity scorecard..." >&2
"$tmp/tracelens" doctor fidelity >&2

echo "doctorgate: OK — invariants hold in both encodings, fidelity within envelope" >&2
