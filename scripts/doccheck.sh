#!/bin/sh
# doccheck.sh — documentation presence gate (part of `make ci`).
#
# Two checks, per the godoc policy in docs/SERVING.md and README.md:
#
#   1. `go vet ./...` must be clean.
#   2. Every package in the module (library packages and commands alike)
#      must carry a package-level doc comment — `go list`'s .Doc field is
#      non-empty — so `go doc repro/internal/<pkg>` always answers with the
#      package's role in the batch or serving path.
#
# Non-zero exit listing the offending packages otherwise.

set -eu

cd "$(dirname "$0")/.."

go vet ./...

missing="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)"
if [ -n "$missing" ]; then
	echo "doccheck: packages missing a package-level doc comment:" >&2
	echo "$missing" >&2
	exit 1
fi

echo "doccheck: OK — vet clean, every package documented" >&2
