#!/bin/sh
# carbongate.sh — carbon/cost reconciliation gate (part of `make ci`).
#
# Records one seeded SmallScale-sized cell through the accounting layer
# (esched -grid -events -metrics), then requires the replay path to
# reproduce the live pricing exactly:
#
#   carbon:/cost: lines   the gCO2e and dollar totals the live run prints
#                         must be byte-identical to the ones `tracelens
#                         carbon` recomputes from the event log alone;
#   tracelens carbon -metrics
#                         the exported esched_carbon_gco2e_total /
#                         esched_cost_usd_total /
#                         esched_carbon_intensity_gco2e_kwh series must
#                         match the replayed report bit-exactly, down to
#                         the float formatting.
#
# The cell runs under three grid profiles — flat (one window), diurnal
# (the 24 h duck curve) and a custom short-period JSON profile that forces
# many windows across the run — and the diurnal leg repeats on the binary
# log encoding, so a codec or windowing change that breaks either path
# fails CI. A fourth leg boots a real eschedd daemon with -grid, drives a
# loadgen burst, drains it, and holds the serving path to the same
# byte-identity. (`tracelens verify` is NOT run on -grid exports: the
# replayed collector rebuilds only the run catalog, not the carbon
# families — `tracelens carbon -metrics` is the reconciliation check
# here.) Non-zero exit (set -eu + explicit diffs) on any mismatch.
#
# Usage: scripts/carbongate.sh
#   CARBON_DISKS / CARBON_REQUESTS / CARBON_BLOCKS / CARBON_SEED override
#   the cell size (defaults: 24 disks, 6000 requests, 2500 blocks, seed 7
#   — the replaygate shape, a couple of seconds total).

set -eu

cd "$(dirname "$0")/.."

disks="${CARBON_DISKS:-24}"
requests="${CARBON_REQUESTS:-6000}"
blocks="${CARBON_BLOCKS:-2500}"
seed="${CARBON_SEED:-7}"

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -KILL "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/esched" ./cmd/esched
go build -o "$tmp/tracelens" ./cmd/tracelens
go build -o "$tmp/eschedd" ./cmd/eschedd

# A 90-second-period profile: the ~5-minute cell crosses many boundaries,
# exercising the windowed integrator rather than a single flat window.
cat >"$tmp/cycle.json" <<'EOF'
{
  "name": "gate-cycle",
  "period_s": 90,
  "steps": [
    {"start_s": 0,  "gco2e_per_kwh": 480},
    {"start_s": 30, "gco2e_per_kwh": 90},
    {"start_s": 60, "gco2e_per_kwh": 610}
  ]
}
EOF

# check_batch GRID LOG: run the cell live under GRID, then require the
# replayed carbon:/cost: lines and the exported metric series to match.
check_batch() {
	g="$1"
	log="$2"
	prom="$log.prom"
	echo "carbongate: recording cell under grid $g ($(basename "$log"))..." >&2
	"$tmp/esched" -disks "$disks" -requests "$requests" -blocks "$blocks" \
		-rf 3 -seed "$seed" -scheduler heuristic -grid "$g" \
		-events "$log" -metrics "$prom" >"$tmp/live.out"
	grep -E '^(carbon|cost):' "$tmp/live.out" >"$tmp/live.lines"

	echo "carbongate: tracelens carbon replay + metrics reconcile ($g)..." >&2
	"$tmp/tracelens" carbon -grid "$g" -metrics "$prom" "$log" >"$tmp/replay.out"
	grep -E '^(carbon|cost):' "$tmp/replay.out" >"$tmp/replay.lines"

	if ! diff -u "$tmp/live.lines" "$tmp/replay.lines" >&2; then
		echo "carbongate: FAIL — live and replayed carbon/cost lines differ (grid $g)" >&2
		exit 1
	fi
	grep -q 'matches .* bit-exactly (4/4 series)' "$tmp/replay.out" || {
		echo "carbongate: FAIL — metrics reconciliation line missing (grid $g)" >&2
		cat "$tmp/replay.out" >&2
		exit 1
	}
}

check_batch flat "$tmp/flat.events"
check_batch diurnal "$tmp/diurnal.events"
check_batch diurnal "$tmp/diurnal.bin"
check_batch "$tmp/cycle.json" "$tmp/cycle.events"

# Serving leg: the eschedd drain summary must be byte-identical to a
# replay of the serving log.
echo "carbongate: booting eschedd with -grid diurnal..." >&2
"$tmp/eschedd" serve -addr 127.0.0.1:0 -addrfile "$tmp/addr" \
	-disks "$disks" -blocks "$blocks" -rf 3 -z 1 -seed "$seed" \
	-grid diurnal -events "$tmp/serve.jsonl" -metrics "$tmp/serve.prom" \
	>"$tmp/daemon.out" 2>"$tmp/daemon.err" &
daemon_pid=$!
i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "carbongate: daemon did not bind within 10s" >&2
		cat "$tmp/daemon.err" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "carbongate: daemon exited during startup" >&2
		cat "$tmp/daemon.err" >&2
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmp/addr")"
"$tmp/eschedd" loadgen -addr "$addr" -requests 3000 \
	-blocks "$blocks" -seed "$seed" -conns 4 -batch 16 >&2
kill -TERM "$daemon_pid"
drain_rc=0
wait "$daemon_pid" || drain_rc=$?
daemon_pid=""
if [ "$drain_rc" -ne 0 ]; then
	echo "carbongate: daemon exited $drain_rc" >&2
	cat "$tmp/daemon.err" >&2
	exit 1
fi
grep -E '^(carbon|cost):' "$tmp/daemon.out" >"$tmp/serve.lines"
"$tmp/tracelens" carbon -grid diurnal -metrics "$tmp/serve.prom" \
	"$tmp/serve.jsonl" >"$tmp/serve.replay"
grep -E '^(carbon|cost):' "$tmp/serve.replay" >"$tmp/serve.replay.lines"
if ! diff -u "$tmp/serve.lines" "$tmp/serve.replay.lines" >&2; then
	echo "carbongate: FAIL — eschedd drain and replayed carbon/cost lines differ" >&2
	exit 1
fi
grep -q 'matches .* bit-exactly (4/4 series)' "$tmp/serve.replay" || {
	echo "carbongate: FAIL — serving metrics reconciliation line missing" >&2
	cat "$tmp/serve.replay" >&2
	exit 1
}

echo "carbongate: OK — live and replayed gCO2e/\$ byte-identical under flat, diurnal, custom JSON and the serving path" >&2
