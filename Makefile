# Energy-aware disk scheduling reproduction — common tasks.

GO ?= go

.PHONY: all build test vet check race-hot ci bench bench-check benchcheck bench-all replay-gate doctor-gate serve-gate carbon-gate flight-gate doc-check fuzz figures figures-full summary examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full pre-merge gate: vet plus the race detector over every package.
# The parallel MWIS solve, sharded graph build, and the sim-kernel event
# plumbing all run under -race here.
check: vet
	$(GO) test -race ./...

# CI gate: build, vet, race-detected tests, the benchmark-regression
# check against the newest BENCH_*.json snapshot (wall time within
# tolerance, allocs/op not increased, kernel events/sec and serving
# decisions/sec above their absolute floors), the log-replay consistency
# gate (a seeded cell's event log must replay to a byte-identical
# metrics export and a bit-exact energy attribution), the doctor
# gate (runtime invariants over both log encodings plus the
# paper-fidelity scorecard), the serving gate (a live eschedd run under
# load must drain clean and doctor-clean), the carbon gate (live
# gCO2e/$ totals byte-identical to their tracelens replay under flat,
# diurnal and custom JSON grids, batch and serving paths), the flight
# gate (an SLO breach on a live eschedd run must freeze a replayable
# flight dump that decodes with tracelens last/shards and replays
# doctor-clean), and the documentation gate (vet + package doc comments
# everywhere).
ci: build check race-hot bench-check replay-gate doctor-gate serve-gate carbon-gate flight-gate doc-check

# Focused race pass over the packages with deliberate concurrency around
# shared state: the sweep cache's single-flight map in internal/experiments
# and the power-aware block cache. `check` already races everything; this
# target re-runs the two at higher -count to shake out rare interleavings,
# then drives the sharded kernel's determinism suite — byte-identical
# traces, state logs and figure output across shard counts, the
# calendar-queue/heap equivalence property, and a small multi-shard fleet
# sweep — under -race, where a missed epoch barrier shows up as a data
# race and a missed event shows up as a byte diff.
race-hot:
	$(GO) test -race -count 4 ./internal/experiments ./internal/cache
	$(GO) test -race -count 2 -run 'TestSharded|TestCalendar|TestFreeRun|TestShardOf|TestShardsValidate|TestFleet' ./internal/simkernel ./internal/storage
	$(GO) test -race -count 1 -run 'TestFigureOutputShardInvariant|TestScaleValidateShards' ./internal/experiments

bench-check:
	scripts/bench.sh -check

# Alias: the regression gate under the name the docs use.
benchcheck: bench-check

# Log-replay consistency gate: record a seeded cell with esched
# -events/-metrics in both encodings, then `tracelens verify` and
# `tracelens attribute` must reproduce the export exactly (see
# scripts/replaygate.sh and docs/OBSERVABILITY.md).
replay-gate:
	scripts/replaygate.sh

# Runtime-invariant + paper-fidelity gate: `tracelens doctor` must find
# zero invariant violations in a seeded cell's log in both encodings, and
# `tracelens doctor fidelity` must score the regenerated seeded sweep
# inside the committed golden envelope (see scripts/doctorgate.sh and
# docs/OBSERVABILITY.md).
doctor-gate:
	scripts/doctorgate.sh

# Serving-path gate: boot a real eschedd daemon with -events and live
# -doctor, drive a loadgen burst, probe /healthz and /metrics, drain with
# SIGTERM, then run `tracelens doctor` over the emitted serving log (see
# scripts/servegate.sh and docs/SERVING.md).
serve-gate:
	scripts/servegate.sh

# Carbon/cost reconciliation gate: a seeded cell's live carbon:/cost:
# lines must be byte-identical to `tracelens carbon` replayed from its
# event log under flat, diurnal and a custom short-period JSON grid (and
# on the binary encoding), the exported carbon/cost metric families must
# reconcile bit-exactly, and a drained eschedd run is held to the same
# identity (see scripts/carbongate.sh and docs/OBSERVABILITY.md).
carbon-gate:
	scripts/carbongate.sh

# Flight-recorder gate: an eschedd run with the recorder armed and a
# 1ns -flight-slo must dump on the first decision, and the dump must
# decode (tracelens last/shards) and replay doctor-clean (see
# scripts/flightgate.sh and docs/OBSERVABILITY.md).
flight-gate:
	scripts/flightgate.sh

# Documentation gate: go vet plus a package-doc-comment presence check
# over every package (see scripts/doccheck.sh).
doc-check:
	scripts/doccheck.sh

# Benchmark-regression harness: runs the tier-1 figure benchmarks plus the
# offline pipeline benchmark and records a BENCH_<date>.json snapshot that
# benchstat can diff against a previous recording (see scripts/bench.sh).
bench:
	scripts/bench.sh

# Every benchmark in every package (component and ablation benches too).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over the trace parsers, the event-log reader and the
# flight-snapshot reader.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzReadSPC -fuzztime 10s
	$(GO) test ./internal/trace -fuzz FuzzReadCelloText -fuzztime 10s
	$(GO) test ./internal/obs -fuzz FuzzReadJSONL -fuzztime 10s
	$(GO) test ./internal/obs -fuzz FuzzReadBinary -fuzztime 10s
	$(GO) test ./internal/obs/flight -fuzz FuzzReadSnapshot -fuzztime 10s

# Fast (small-scale) regeneration of every paper figure.
figures:
	$(GO) run ./cmd/figures -out results

# The paper's full 180-disk / 70k-request setup, including the extension
# experiments (takes a few minutes).
figures-full:
	$(GO) run ./cmd/figures -scale full -ext -out results

summary:
	$(GO) run ./cmd/figures -scale full -ext -fig none -summary results/summary.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/offline-optimal
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/realtrace
	$(GO) run ./examples/fullstack
	$(GO) run ./examples/failures

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
