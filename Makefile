# Energy-aware disk scheduling reproduction — common tasks.

GO ?= go

.PHONY: all build test vet bench fuzz figures figures-full summary examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper figure plus component and ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over the trace parsers.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzReadSPC -fuzztime 10s
	$(GO) test ./internal/trace -fuzz FuzzReadCelloText -fuzztime 10s

# Fast (small-scale) regeneration of every paper figure.
figures:
	$(GO) run ./cmd/figures -out results

# The paper's full 180-disk / 70k-request setup, including the extension
# experiments (takes a few minutes).
figures-full:
	$(GO) run ./cmd/figures -scale full -ext -out results

summary:
	$(GO) run ./cmd/figures -scale full -ext -fig none -summary results/summary.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/offline-optimal
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/realtrace
	$(GO) run ./examples/fullstack
	$(GO) run ./examples/failures

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
