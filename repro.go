// Package repro is an energy-aware disk storage system scheduler and
// simulator: a from-scratch Go reproduction of "Exploiting Replication for
// Energy-Aware Scheduling in Disk Storage Systems" (Chou, Kim, Rotem;
// ICDCS 2011).
//
// The library schedules read requests across the existing replicas of each
// block so that as many disks as possible stay spun down under a
// fixed-threshold power manager (2CPM), without moving any data. It
// provides:
//
//   - the paper's five schedulers: Random and Static baselines, the online
//     cost-function Heuristic, the weighted-set-cover batch scheduler, and
//     the offline MWIS pipeline with exact and greedy solvers;
//   - a discrete-event storage-system simulator (disk mechanics, power
//     states, 2CPM) replacing the paper's OMNeT++/DiskSim setup;
//   - synthetic Cello-like and Financial1-like workload generators plus
//     SPC and SRT-text trace parsers for real traces;
//   - an experiment harness regenerating every figure of the paper's
//     evaluation (see internal/experiments and cmd/figures).
//
// Quick start:
//
//	plc, _ := repro.GeneratePlacement(repro.PlacementConfig{
//		NumDisks: 180, NumBlocks: 30000, ReplicationFactor: 3, ZipfExponent: 1,
//	})
//	reqs := repro.CelloLike(70000, 30000, 1)
//	cfg := repro.DefaultSystemConfig()
//	res, _ := repro.RunOnline(cfg, plc.Locations,
//		repro.NewHeuristicScheduler(plc.Locations, repro.DefaultCost(cfg.Power)), reqs)
//	fmt.Printf("energy vs always-on: %.2f\n", res.NormalizedEnergy())
package repro

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/offline"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core domain types (Table 1 of the paper).
type (
	// Request is a read I/O request r_i against a replicated block.
	Request = core.Request
	// RequestID identifies a request.
	RequestID = core.RequestID
	// BlockID identifies a data item.
	BlockID = core.BlockID
	// DiskID identifies a disk d_k.
	DiskID = core.DiskID
	// DiskState is a disk power state.
	DiskState = core.DiskState
	// Schedule maps every request to its serving disk.
	Schedule = core.Schedule
)

// Disk power states.
const (
	StateStandby  = core.StateStandby
	StateSpinUp   = core.StateSpinUp
	StateIdle     = core.StateIdle
	StateActive   = core.StateActive
	StateSpinDown = core.StateSpinDown
)

// Power management.
type (
	// PowerConfig holds disk power parameters (Figure 5).
	PowerConfig = power.Config
	// PowerPolicy decides when idle disks spin down.
	PowerPolicy = power.Policy
)

// DefaultPowerConfig returns the evaluation's power model (Cheetah 15K.5
// mechanics with Barracuda-class power figures).
func DefaultPowerConfig() PowerConfig { return power.DefaultConfig() }

// ToyPowerConfig returns the simplified model of the paper's worked
// examples (1 W idle, free instantaneous transitions, 5 s breakeven).
func ToyPowerConfig() PowerConfig { return power.ToyConfig() }

// TwoCompetitivePolicy returns the 2CPM policy: spin down after the
// breakeven time E_up/down / P_I.
func TwoCompetitivePolicy(cfg PowerConfig) PowerPolicy { return power.TwoCompetitive{Config: cfg} }

// AlwaysOnPolicy never spins disks down (the normalization baseline).
func AlwaysOnPolicy() PowerPolicy { return power.AlwaysOn{} }

// Placement.
type (
	// Placement is an immutable block-to-replica-locations map.
	Placement = placement.Placement
	// PlacementConfig parameterizes the Section 4.2 synthetic layout.
	PlacementConfig = placement.GenerateConfig
)

// GeneratePlacement builds the evaluation layout: Zipf-skewed originals,
// uniformly spread replicas on distinct disks.
func GeneratePlacement(cfg PlacementConfig) (*Placement, error) { return placement.Generate(cfg) }

// NewPlacement builds a placement from explicit per-block locations
// (original first).
func NewPlacement(numDisks int, locs [][]DiskID) (*Placement, error) {
	return placement.New(numDisks, locs)
}

// Workloads.

// CelloLike generates a bursty request stream with the HP Cello trace's
// characteristics (Section 4.1).
func CelloLike(numRequests, numBlocks int, seed int64) []Request {
	return workload.CelloLike(numRequests, numBlocks, seed)
}

// FinancialLike generates a smoother OLTP stream with the Financial1
// trace's characteristics.
func FinancialLike(numRequests, numBlocks int, seed int64) []Request {
	return workload.FinancialLike(numRequests, numBlocks, seed)
}

// WorkloadStats summarizes a request stream.
type WorkloadStats = workload.Stats

// AnalyzeWorkload computes arrival statistics for a request stream.
func AnalyzeWorkload(reqs []Request) WorkloadStats { return workload.Analyze(reqs) }

// Traces.

// TraceFormat selects an on-disk trace format.
type TraceFormat int

// Supported trace formats.
const (
	// FormatSPC is the UMass storage repository format (Financial1):
	// "ASU,LBA,Size,Opcode,Timestamp".
	FormatSPC TraceFormat = iota + 1
	// FormatCelloText is a whitespace text rendering of HP SRT traces:
	// "<seconds> <device> <lba> <bytes> <R|W>".
	FormatCelloText
)

// LoadTrace parses a real trace and converts it to a request stream the
// way the paper does: writes dropped, each unique (device, LBA) pair one
// block, at most maxRequests reads (0 = all). It returns the stream and
// the number of distinct blocks.
func LoadTrace(r io.Reader, format TraceFormat, maxRequests int) ([]Request, int, error) {
	var recs []trace.Record
	var err error
	switch format {
	case FormatSPC:
		recs, err = trace.ReadSPC(r)
	case FormatCelloText:
		recs, err = trace.ReadCelloText(r)
	default:
		return nil, 0, fmt.Errorf("repro: unknown trace format %d", format)
	}
	if err != nil {
		return nil, 0, err
	}
	reqs, blocks := trace.ToRequests(recs, trace.ConvertOptions{MaxRequests: maxRequests})
	return reqs, blocks, nil
}

// WriteTrace renders a request stream to an on-disk trace format.
func WriteTrace(w io.Writer, format TraceFormat, reqs []Request) error {
	recs := trace.FromRequests(reqs)
	switch format {
	case FormatSPC:
		return trace.WriteSPC(w, recs)
	case FormatCelloText:
		return trace.WriteCelloText(w, recs)
	default:
		return fmt.Errorf("repro: unknown trace format %d", format)
	}
}

// Schedulers.
type (
	// OnlineScheduler assigns each request on arrival.
	OnlineScheduler = sched.Online
	// BatchScheduler assigns queued batches at interval boundaries.
	BatchScheduler = sched.Batch
	// CostConfig parameterizes the composite cost function C(d) of Eq. 6.
	CostConfig = sched.CostConfig
	// Locator resolves a block to its replica locations.
	Locator = sched.Locator
)

// DefaultCost returns the evaluation's cost parameters (alpha=0.2 with the
// beta balance point for joule-scale energies).
func DefaultCost(p PowerConfig) CostConfig { return sched.DefaultCost(p) }

// NewRandomScheduler returns the uniform-replica baseline.
func NewRandomScheduler(loc Locator, seed int64) OnlineScheduler { return sched.NewRandom(loc, seed) }

// NewStaticScheduler returns the original-location baseline.
func NewStaticScheduler(loc Locator) OnlineScheduler { return sched.Static{Locations: loc} }

// NewHeuristicScheduler returns the online energy-aware scheduler
// (Section 3.3).
func NewHeuristicScheduler(loc Locator, cost CostConfig) OnlineScheduler {
	return sched.Heuristic{Locations: loc, Cost: cost}
}

// NewWSCScheduler returns the weighted-set-cover batch scheduler
// (Section 3.2).
func NewWSCScheduler(loc Locator, cost CostConfig) BatchScheduler {
	return sched.WSC{Locations: loc, Cost: cost}
}

// NewPrecomputedScheduler wraps a complete schedule (e.g. from
// SolveOffline) as an online scheduler.
func NewPrecomputedScheduler(label string, s Schedule) OnlineScheduler {
	return sched.Precomputed{Label: label, Assignments: s}
}

// Offline scheduling (Section 3.1).
type (
	// OfflineStats summarizes a schedule under the offline analytic model.
	OfflineStats = offline.Stats
	// OfflineOptions bounds MWIS graph construction on large traces.
	OfflineOptions = offline.BuildOptions
)

// SolveOffline runs the MWIS offline pipeline with the GWMIN greedy and
// local-search refinement, returning the schedule and its analytic stats.
func SolveOffline(reqs []Request, loc Locator, cfg PowerConfig, opts OfflineOptions) (Schedule, OfflineStats, error) {
	return offline.SolveRefined(reqs, loc, cfg, opts, 8)
}

// SolveOfflineExact solves the offline problem optimally via exact MWIS
// branch and bound; exponential, for small instances only.
func SolveOfflineExact(reqs []Request, loc Locator, cfg PowerConfig) (Schedule, OfflineStats, error) {
	return offline.SolveExact(reqs, loc, cfg)
}

// EvaluateSchedule computes the analytic offline energy of any schedule.
func EvaluateSchedule(reqs []Request, s Schedule, cfg PowerConfig, loc Locator) (OfflineStats, error) {
	return offline.Evaluate(reqs, s, cfg, loc)
}

// Simulation.
type (
	// SystemConfig describes the simulated storage system.
	SystemConfig = storage.Config
	// Result aggregates one simulation run.
	Result = storage.Result
)

// DefaultSystemConfig returns the paper's 180-disk evaluation system.
func DefaultSystemConfig() SystemConfig { return storage.DefaultConfig() }

// RunOnline simulates the online scheduling model over a request stream.
// Options (e.g. WithCache) add layers in front of the scheduler.
func RunOnline(cfg SystemConfig, loc Locator, s OnlineScheduler, reqs []Request, opts ...RunOption) (*Result, error) {
	return storage.RunOnline(cfg, loc, s, reqs, opts...)
}

// RunBatch simulates the batch scheduling model with the given interval.
func RunBatch(cfg SystemConfig, loc Locator, s BatchScheduler, reqs []Request, interval time.Duration, opts ...RunOption) (*Result, error) {
	return storage.RunBatch(cfg, loc, s, reqs, interval, opts...)
}

// Experiments (the paper's evaluation).
type (
	// ExperimentScale sizes an experiment run.
	ExperimentScale = experiments.Scale
	// ExperimentTrace selects the evaluation workload.
	ExperimentTrace = experiments.Trace
	// ReplicationSweep holds the shared Figures 6-8/13-16 measurements.
	ReplicationSweep = experiments.ReplicationSweep
	// FigureTable is a rendered experiment result.
	FigureTable = experiments.Table
)

// Evaluation workloads.
const (
	TraceCello     = experiments.Cello
	TraceFinancial = experiments.Financial
)

// FullScale reproduces the paper's experimental scale (180 disks, 70,000
// requests); SmallScale keeps the trends at a fraction of the runtime.
func FullScale() ExperimentScale  { return experiments.FullScale() }
func SmallScale() ExperimentScale { return experiments.SmallScale() }

// SweepReplication runs the replication-factor sweep behind Figures 6-8
// and 13-16.
func SweepReplication(s ExperimentScale, tr ExperimentTrace) (*ReplicationSweep, error) {
	return experiments.SweepReplication(s, tr)
}
