package repro

import (
	"repro/internal/account"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/sched"
	"repro/internal/simkernel"
	"repro/internal/storage"
)

// This file exposes the observability layer (internal/obs): structured
// event tracing, Prometheus-text-format metrics export and profiling
// hooks. See docs/OBSERVABILITY.md for the event schema and metric
// catalog.

// Observability types.
type (
	// Tracer is a ring-buffered structured event recorder; attach one to a
	// run with WithTracer. All emit methods are safe on a nil *Tracer.
	Tracer = obs.Tracer
	// TraceEvent is one traced occurrence (flat value type).
	TraceEvent = obs.Event
	// TraceKind identifies the type of a traced event.
	TraceKind = obs.Kind
	// Collector aggregates counters, gauges and histograms and renders them
	// in the Prometheus text exposition format.
	Collector = obs.Collector
	// SimMetrics is the simulator's pre-registered metric catalog.
	SimMetrics = obs.RunMetrics
	// Profiles bundles the standard pprof/trace CLI flags.
	Profiles = obs.Profiles
)

// NewTracer returns an enabled tracer with a ring of the given capacity
// (obs.DefaultCapacity if capacity <= 0). Without a sink it is a flight
// recorder keeping the most recent events; Tracer.SetSink streams instead.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewCollector returns an empty metrics registry; pass it to runs with
// WithCollector and snapshot it any time with Collector.WriteTo.
func NewCollector() *Collector { return obs.NewCollector() }

// WithTracer attaches a structured event tracer to a simulation run.
func WithTracer(tr *Tracer) RunOption { return storage.WithTracer(tr) }

// WithCollector registers and live-updates the simulator metric catalog on
// c during a run; end-of-run values are reconciled to the exact report
// aggregates.
func WithCollector(c *Collector) RunOption { return storage.WithCollector(c) }

// Runtime verification (internal/obs/monitor): streaming invariant
// monitors over the event stream. See the "Runtime invariants & the
// doctor" section of docs/OBSERVABILITY.md.
type (
	// Doctor is a runtime-verification suite: a set of streaming invariant
	// monitors (power-state legality, bit-exact energy conservation,
	// request conservation, replica validity, 2CPM threshold compliance,
	// latency sanity) checked over a run's event stream.
	Doctor = monitor.Suite
	// DoctorConfig parameterizes a Doctor with the run's physical model.
	DoctorConfig = monitor.Config
	// DoctorViolation is one observed invariant violation, pinned to the
	// event sequence number, disk, request and decision involved.
	DoctorViolation = monitor.Violation
)

// NewDoctor returns a runtime-verification suite for the given system
// model. Feed it events with Doctor.Observe (or attach it to a live run
// with WithDoctor) and collect the verdict with Doctor.Passed.
func NewDoctor(cfg DoctorConfig) *Doctor { return monitor.NewSuite(cfg) }

// WithDoctor tees a live run's event stream into the suite and finalizes
// it (including the bit-exact energy cross-check against the run's result)
// when the run ends. Violations never alter the run; callers inspect
// Doctor.Passed afterwards.
func WithDoctor(d *Doctor) RunOption { return storage.WithMonitor(d) }

// Carbon & cost accounting (internal/account): gCO2e and dollar
// attribution of a run's disk energy. See the "Carbon & cost accounting"
// section of docs/OBSERVABILITY.md.
type (
	// GridProfile is a piecewise-constant grid carbon-intensity profile
	// (gCO2e/kWh over virtual run time, optionally periodic).
	GridProfile = account.GridProfile
	// CostModel prices a run in dollars: $/kWh energy tariff plus
	// straight-line per-disk capex amortization.
	CostModel = account.CostModel
	// CarbonAccountant integrates the event stream against a grid profile
	// and cost model; live runs and log replays produce byte-identical
	// reports.
	CarbonAccountant = account.Accumulator
	// CarbonReport is the finalized carbon/cost accounting of a run.
	CarbonReport = account.Report
)

// ResolveGridProfile maps a -grid flag value to a profile: "flat",
// "diurnal" (alias "solar"), "coal", or a path to a JSON profile file.
func ResolveGridProfile(name string) (*GridProfile, error) { return account.ResolveGrid(name) }

// ResolveCostModel maps a -cost flag value to a model: "default" or a
// path to a JSON cost-model file.
func ResolveCostModel(name string) (CostModel, error) { return account.ResolveCost(name) }

// NewCarbonAccountant returns an accumulator pricing runs under cfg's
// power model against the given grid profile and cost model.
func NewCarbonAccountant(cfg SystemConfig, grid *GridProfile, cost CostModel) (*CarbonAccountant, error) {
	return account.NewAccumulator(cfg.Power, grid, cost)
}

// WithAccounting tees a live run's event stream into the accountant and
// finalizes it when the run ends; when a collector is also attached, call
// CarbonAccountant.Bind first so the carbon/cost metric families are
// registered and reconciled.
func WithAccounting(a *CarbonAccountant) RunOption { return storage.WithAccounting(a) }

// Flight recorder (internal/obs/flight): an always-on ring of the most
// recent events that freezes into a replayable ESCHOBS2 snapshot (plus
// telemetry and pprof bundles) when something goes wrong. See the "Engine
// introspection & the flight recorder" section of docs/OBSERVABILITY.md.
type (
	// FlightRecorder is the always-on incident ring; attach one to a run
	// with WithFlight and trigger dumps with FlightRecorder.RequestDump.
	FlightRecorder = flight.Recorder
	// FlightConfig parameterizes a FlightRecorder (ring capacity, dump
	// directory, pprof bundling, telemetry snapshot source).
	FlightConfig = flight.Config
	// FlightDump is one decoded dump directory: manifest, event window and
	// raw telemetry snapshot.
	FlightDump = flight.Dump
	// KernelTelemetry is the simulation kernel's introspection snapshot:
	// per-shard event/queue/pool counters and, when timing is armed, the
	// exec/queue/stall wall-clock attribution behind `tracelens shards`.
	KernelTelemetry = simkernel.KernelStats
)

// NewFlightRecorder returns a flight recorder; it touches no files until a
// dump triggers.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return flight.New(cfg) }

// WithFlight tees a live run's event stream into the recorder's ring (one
// slot store per event, no allocation) and materialises requested dumps
// inline on the observing goroutine. When a Doctor rides the same run,
// every violation automatically requests a dump.
func WithFlight(r *FlightRecorder) RunOption { return storage.WithFlight(r) }

// ReadFlightDump decodes a dump directory written by a FlightRecorder,
// verifying the event window against its manifest.
func ReadFlightDump(dir string) (*FlightDump, error) { return flight.ReadDump(dir) }

// NewTracedHeuristicScheduler is NewHeuristicScheduler with decision
// tracing: every placement emits a decision event carrying the winning
// composite cost C(d), its energy term E(d) and the chosen disk's load.
func NewTracedHeuristicScheduler(loc Locator, cost CostConfig, tr *Tracer) OnlineScheduler {
	return sched.Heuristic{Locations: loc, Cost: cost, Tracer: tr}
}

// NewTracedWSCScheduler is NewWSCScheduler with per-request decision
// tracing.
func NewTracedWSCScheduler(loc Locator, cost CostConfig, tr *Tracer) BatchScheduler {
	return sched.WSC{Locations: loc, Cost: cost, Tracer: tr, Scratch: &sched.CoverScratch{}}
}
