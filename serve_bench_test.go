package repro

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BenchmarkServeThroughput measures the serving engine end to end:
// concurrent submitters push requests through the sharded router, the
// decision loop's Eq. 6 rounds, and live dispatch into the simulated disk
// population. The reported decisions/sec metric is gated by scripts/bench.sh
// via benchcheck -decisionsfloor (the eschedd acceptance floor, 100k/sec).
func BenchmarkServeThroughput(b *testing.B) {
	const disks, blocks = 64, 20000
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: disks, NumBlocks: blocks,
		ReplicationFactor: 3, ZipfExponent: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	pc := power.DefaultConfig()
	eng, err := serve.New(serve.Config{
		System: storage.Config{
			NumDisks: disks,
			Power:    pc,
			Mech:     diskmodel.Cheetah15K5(),
			Policy:   power.TwoCompetitive{Config: pc},
		},
		Router:      serve.NewRouter(plc, 0),
		MaxInFlight: 8192,
		RoundMax:    512,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-draw the block sequence so the popularity skew matches the
	// trace-driven experiments without generator cost inside the loop.
	trace := workload.CelloLike(1<<16, blocks, 7)
	seq := make([]core.BlockID, len(trace))
	for i, r := range trace {
		seq[i] = r.Block
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)-1) % len(seq)
			if _, err := eng.Submit(core.Request{Block: seq[i]}, 0); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "decisions/sec")
	}
	if _, err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpanOverhead prices request lifecycle spans on the serving
// path: one submitter drives the engine in Sequential mode (deterministic
// virtual clock, so allocs/op is reproducible) without a collector ("off",
// spans disabled — the hot path scripts/bench.sh -check pins exactly via
// benchcheck -exactallocs) and with one ("on", spans plus the serving
// metric families). benchcheck -overheadtol holds on-vs-off under the <5%
// span budget. No decisions/sec metric here: the single blocking submitter
// measures per-request cost, not the engine's parallel throughput.
func BenchmarkSpanOverhead(b *testing.B) {
	const disks, blocks = 32, 4000
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: disks, NumBlocks: blocks,
		ReplicationFactor: 3, ZipfExponent: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.CelloLike(1<<14, blocks, 7)
	seq := make([]core.BlockID, len(trace))
	for i, r := range trace {
		seq[i] = r.Block
	}
	run := func(b *testing.B, col *obs.Collector) {
		pc := power.DefaultConfig()
		eng, err := serve.New(serve.Config{
			System: storage.Config{
				NumDisks: disks,
				Power:    pc,
				Mech:     diskmodel.Cheetah15K5(),
				Policy:   power.TwoCompetitive{Config: pc},
			},
			Router:      serve.NewRouter(plc, 0),
			MaxInFlight: 1024,
			RoundMax:    512,
			Sequential:  true,
			Collector:   col,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := core.Request{
				ID:      core.RequestID(i),
				Block:   seq[i%len(seq)],
				Arrival: time.Duration(i) * 50 * time.Microsecond,
			}
			if _, err := eng.Submit(req, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if _, err := eng.Drain(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewCollector()) })
}
