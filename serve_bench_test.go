package repro

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/workload"
)

// serveBenchPlacement builds the rack-local layout the sharded engine
// needs: replicas inside the original's rack, racks nesting into any shard
// count that divides them.
func serveBenchPlacement(b *testing.B, disks, blocks, racks int) *placement.Placement {
	b.Helper()
	plc, err := placement.GenerateRackLocal(placement.GenerateConfig{
		NumDisks: disks, NumBlocks: blocks,
		ReplicationFactor: 3, ZipfExponent: 1, Seed: 1,
	}, racks)
	if err != nil {
		b.Fatal(err)
	}
	return plc
}

// BenchmarkServeThroughput measures the serving engine end to end at 1, 4
// and 8 decision shards: concurrent submitters push requests through the
// router, the per-shard ring-buffer admission queues, the flat-combined
// Eq. 6 decision rounds, and live dispatch into the simulated disk
// population. The reported decisions/sec metric is gated by
// scripts/bench.sh via benchcheck -decisionsfloor (the eschedd acceptance
// floor, 1M/sec) at every shard count.
func BenchmarkServeThroughput(b *testing.B) {
	const disks, blocks, racks = 64, 20000, 8
	plc := serveBenchPlacement(b, disks, blocks, racks)
	// Pre-draw the block sequence so the popularity skew matches the
	// trace-driven experiments without generator cost inside the loop.
	trace := workload.CelloLike(1<<16, blocks, 7)
	seq := make([]core.BlockID, len(trace))
	for i, r := range trace {
		seq[i] = r.Block
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pc := power.DefaultConfig()
			eng, err := serve.New(serve.Config{
				System: storage.Config{
					NumDisks: disks,
					Power:    pc,
					Mech:     diskmodel.Cheetah15K5(),
					Policy:   power.TwoCompetitive{Config: pc},
				},
				Router:      serve.NewRouter(plc, 0),
				Shards:      shards,
				MaxInFlight: 8192,
				RoundMax:    512,
			})
			if err != nil {
				b.Fatal(err)
			}
			var lane atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Per-goroutine cursor over the power-of-two trace (offset
				// per lane): the harness adds one mask per request instead
				// of a shared atomic counter the engine never needed.
				i := int(lane.Add(1)) * (len(seq) / 8)
				for pb.Next() {
					if _, err := eng.Submit(core.Request{Block: seq[i&(len(seq)-1)]}, 0); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			if el := b.Elapsed().Seconds(); el > 0 {
				b.ReportMetric(float64(b.N)/el, "decisions/sec")
			}
			if _, err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkServeSubmit prices the hot submit path in live mode on a
// 4-shard engine: one submitter, so every request is flat-combined inline
// on the submitting goroutine — lookup, admission ring push, decision,
// dispatch and reply with no cross-goroutine handoff. The "off" leg (no
// collector) is pinned at 0 allocs/op by scripts/bench.sh via benchcheck
// -zeroallocs; "on" adds the serving metric families and lifecycle spans.
// No decisions/sec metric here: the single blocking submitter measures
// per-request cost, not the engine's parallel throughput.
func BenchmarkServeSubmit(b *testing.B) {
	const disks, blocks, racks = 32, 4000, 4
	plc := serveBenchPlacement(b, disks, blocks, racks)
	trace := workload.CelloLike(1<<14, blocks, 7)
	seq := make([]core.BlockID, len(trace))
	for i, r := range trace {
		seq[i] = r.Block
	}
	run := func(b *testing.B, col *obs.Collector) {
		pc := power.DefaultConfig()
		eng, err := serve.New(serve.Config{
			System: storage.Config{
				NumDisks: disks,
				Power:    pc,
				Mech:     diskmodel.Cheetah15K5(),
				Policy:   power.TwoCompetitive{Config: pc},
			},
			Router:      serve.NewRouter(plc, 0),
			Shards:      4,
			MaxInFlight: 1024,
			RoundMax:    512,
			Collector:   col,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Submit(core.Request{Block: seq[i%len(seq)]}, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if _, err := eng.Drain(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewCollector()) })
}

// BenchmarkSpanOverhead prices request lifecycle spans on the serving
// path: one submitter drives the engine in Sequential mode (deterministic
// virtual clock, so allocs/op is reproducible) without a collector ("off",
// spans disabled — the hot path scripts/bench.sh -check pins exactly via
// benchcheck -exactallocs) and with one ("on", spans plus the serving
// metric families). benchcheck -overheadtol holds on-vs-off under the <5%
// span budget. No decisions/sec metric here: the single blocking submitter
// measures per-request cost, not the engine's parallel throughput.
func BenchmarkSpanOverhead(b *testing.B) {
	const disks, blocks = 32, 4000
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: disks, NumBlocks: blocks,
		ReplicationFactor: 3, ZipfExponent: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.CelloLike(1<<14, blocks, 7)
	seq := make([]core.BlockID, len(trace))
	for i, r := range trace {
		seq[i] = r.Block
	}
	run := func(b *testing.B, col *obs.Collector) {
		pc := power.DefaultConfig()
		eng, err := serve.New(serve.Config{
			System: storage.Config{
				NumDisks: disks,
				Power:    pc,
				Mech:     diskmodel.Cheetah15K5(),
				Policy:   power.TwoCompetitive{Config: pc},
			},
			Router:      serve.NewRouter(plc, 0),
			MaxInFlight: 1024,
			RoundMax:    512,
			Sequential:  true,
			Collector:   col,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := core.Request{
				ID:      core.RequestID(i),
				Block:   seq[i%len(seq)],
				Arrival: time.Duration(i) * 50 * time.Microsecond,
			}
			if _, err := eng.Submit(req, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if _, err := eng.Drain(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewCollector()) })
}
