// Command tracelens is the analysis CLI over the simulator's canonical
// event logs (see docs/OBSERVABILITY.md): it reconstructs request
// lifecycles and per-disk power-state timelines from a recorded run and
// answers the causal questions the live metrics cannot — which scheduler
// decision woke which disk, and what it cost.
//
// Logs are produced by esched -events FILE (JSONL, or binary when FILE
// ends in .bin); both encodings are auto-detected. Subcommands:
//
//	tracelens summary RUN.events
//	    Aggregate view: outcomes, spin activity, energy by state,
//	    latency percentiles.
//	tracelens timeline RUN.events [-disk N] [-max N]
//	    Per-disk power-state segments with per-segment energy and the
//	    causing decision, plus the queue-depth heatmap.
//	tracelens attribute RUN.events [-top N] [-metrics FILE]
//	    The energy waterfall: every joule bucketed into baseline /
//	    idle / service / spin-up / spin-down, spin cycles pinned to the
//	    scheduler decisions that induced them. With -metrics, the
//	    replayed by-state totals are checked bit-exactly against the
//	    run's exported snapshot.
//	tracelens carbon RUN.events [-grid P] [-cost M] [-windows N] [-metrics FILE]
//	    Carbon & cost accounting replayed from the log: the event stream
//	    is integrated against a grid-intensity profile window by window,
//	    reproducing a live -grid run's gCO2e/$ byte-identically (the
//	    carbon gate proves it). With -metrics, the replayed carbon and
//	    cost totals are checked bit-exactly against the run's exported
//	    snapshot.
//	tracelens whatif [-trace T] [-grid P] [-cost M] [-scale small|full]
//	    Consolidation what-if over the cached replication sweep: every
//	    policy re-priced in J / gCO2e / $ at each consolidation ratio
//	    without re-simulation.
//	tracelens diff A.events B.events
//	    Policy-regression report between two runs.
//	tracelens verify RUN.events -metrics FILE
//	    Replays the log through a fresh collector and byte-compares the
//	    render against the exported snapshot: a passing verify proves
//	    the log alone reproduces the run's metrics exactly.
//	tracelens doctor RUN.events [-disks N -blocks N -rf N -z Z -seed N] [-policy P]
//	    Runs every runtime invariant monitor over the log (power-state
//	    machine legality, bit-exact energy conservation, request
//	    conservation, 2CPM threshold compliance, latency sanity — plus
//	    replica validity when the placement parameters are given) and
//	    exits non-zero on any violation.
//	tracelens doctor fidelity [-envelopes FILE] [-write FILE]
//	    Paper-fidelity scorecard: regenerates the seeded small-scale
//	    replication sweep under live invariant monitoring and scores
//	    every cell against the committed golden envelope. -write
//	    regenerates the envelope after an intentional change.
//	tracelens shards STATS.json
//	    Per-shard kernel telemetry report over a KernelStats snapshot
//	    (figures -fleet -kernelstats FILE, or a flight dump's
//	    telemetry.json): events, queue ops and high-water marks per
//	    shard, wall-clock attribution (execute / queue ops / stall) and
//	    the straggler shard holding the drain open.
//	tracelens last DIR
//	    Inspect the most recent flight-recorder dump under DIR: trigger,
//	    captured event window, engine telemetry and bundled artifacts.
//
// Exit codes are uniform across subcommands: 0 on success (including -h),
// 1 on an operational failure (unreadable log, violated invariant,
// diverging metrics), 2 on a usage error (unknown subcommand, bad flag,
// wrong arity) with the usage text on stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs/analyze"
	"repro/internal/obs/monitor"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

const usageText = `usage: tracelens <summary|timeline|attribute|carbon|whatif|diff|verify|doctor|shards|last> [flags] LOG...
run 'tracelens <subcommand> -h' for flags`

// usageError marks a command-line mistake (as opposed to an operational
// failure): run maps it to exit code 2 with the message on stderr. An
// empty message means the flag package already printed the diagnostics.
type usageError string

func (e usageError) Error() string { return string(e) }

func usagef(format string, a ...any) error {
	return usageError(fmt.Sprintf(format, a...))
}

// run is the CLI entry point: it dispatches the subcommand and maps its
// error to the exit code contract documented above.
func run(args []string, stderr io.Writer) int {
	err := dispatch(args, stderr)
	var ue usageError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.As(err, &ue):
		if ue != "" {
			fmt.Fprintln(stderr, "tracelens:", ue.Error())
		}
		return 2
	default:
		fmt.Fprintln(stderr, "tracelens:", err)
		return 1
	}
}

func dispatch(args []string, stderr io.Writer) error {
	if len(args) == 0 {
		return usageError(usageText)
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "summary":
		return cmdSummary(rest, stderr)
	case "timeline":
		return cmdTimeline(rest, stderr)
	case "attribute":
		return cmdAttribute(rest, stderr)
	case "carbon":
		return cmdCarbon(rest, stderr)
	case "whatif":
		return cmdWhatif(rest, stderr)
	case "diff":
		return cmdDiff(rest, stderr)
	case "verify":
		return cmdVerify(rest, stderr)
	case "doctor":
		if len(rest) > 0 && rest[0] == "fidelity" {
			return cmdDoctorFidelity(rest[1:], stderr)
		}
		return cmdDoctor(rest, stderr)
	case "shards":
		return cmdShards(rest, stderr)
	case "last":
		return cmdLast(rest, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stderr, usageText)
		return nil
	default:
		return usagef("unknown subcommand %q\n%s", cmd, usageText)
	}
}

// newFlagSet builds a subcommand flag set that reports parse errors and
// -h output on the dispatcher's stderr.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parse classifies flag-set outcomes: help passes through (exit 0), any
// other parse failure is a usage error whose diagnostics the flag set
// already printed.
func parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return usageError("")
}

// load reads and reconstructs one run log.
func load(path string) (*analyze.Run, error) {
	evs, err := analyze.Load(path)
	if err != nil {
		return nil, err
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("%s: empty event log", path)
	}
	r, err := analyze.New(evs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func cmdSummary(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens summary", stderr)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens summary LOG")
	}
	evs, err := analyze.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		// An empty log is a legitimate capture (a run that recorded nothing
		// yet), not an operational failure: report it and exit 0.
		fmt.Println("events        0 (empty log)")
		return nil
	}
	r, err := analyze.New(evs)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	s := r.Summarize()
	fmt.Printf("events        %d\n", s.Events)
	fmt.Printf("complete      %v\n", r.Complete())
	fmt.Printf("horizon       %v\n", s.Horizon)
	fmt.Printf("kernel events %d\n", s.Fired)
	fmt.Printf("disks         %d\n", s.Disks)
	fmt.Printf("requests      %d\n", s.Requests)
	fmt.Printf("decisions     %d\n", s.Decisions)
	fmt.Printf("served        %d (cache hits %d)\n", s.Served, s.CacheHits)
	fmt.Printf("dropped       %d\n", s.Dropped)
	fmt.Printf("redispatched  %d\n", s.Redispatched)
	fmt.Printf("spin-ups      %d\n", s.SpinUps)
	fmt.Printf("spin-downs    %d\n", s.SpinDowns)
	fmt.Printf("energy        %.6g J\n", s.Energy)
	for st := core.StateStandby; st <= core.StateSpinDown; st++ {
		fmt.Printf("  %-11s %.6g J\n", st.String(), s.EnergyByState[st])
	}
	lat := r.Latencies()
	if lat.Count() > 0 {
		fmt.Printf("latency       mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
			lat.Mean(), lat.Percentile(50), lat.Percentile(95), lat.Percentile(99), lat.Max())
	}
	return nil
}

func cmdTimeline(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens timeline", stderr)
	disk := fs.Int("disk", -1, "show only this disk (-1 = all)")
	max := fs.Int("max", 0, "show at most this many segments per disk (0 = all)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens timeline [-disk N] [-max N] LOG")
	}
	r, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, d := range r.DiskOrder {
		if *disk >= 0 && d != core.DiskID(*disk) {
			continue
		}
		t := r.Disks[d]
		fmt.Printf("disk %d: %d segments, %d spin-ups, %d spin-downs, %.6g J, served %d\n",
			d, len(t.Segments), t.SpinUps, t.SpinDowns, t.Energy, t.Served)
		if t.Served > 0 {
			fmt.Printf("  latency mean %v  p95 %v\n", t.Response.Mean(), t.Response.Percentile(95))
		}
		n := len(t.Segments)
		if *max > 0 && n > *max {
			n = *max
		}
		fmt.Printf("  %-14s %-14s %-10s %-14s %14s %10s\n", "start", "end", "state", "duration", "energy J", "cause")
		for _, seg := range t.Segments[:n] {
			end, dur := "open", time.Duration(0)
			if !seg.Open {
				end, dur = seg.End.String(), seg.Duration()
			}
			cause := "-"
			if seg.Cause != 0 {
				cause = fmt.Sprintf("dec %d", seg.Cause)
			}
			fmt.Printf("  %-14v %-14s %-10s %-14v %14.6g %10s\n",
				seg.Start, end, seg.State, dur, seg.EnergyJ(), cause)
		}
		if n < len(t.Segments) {
			fmt.Printf("  ... %d more segments\n", len(t.Segments)-n)
		}
	}
	bounds, rows := r.DepthHeatmap()
	fmt.Printf("\nqueue-depth heatmap (observations per enqueue):\n%-6s", "disk")
	for _, b := range bounds {
		fmt.Printf(" %6.0f", b)
	}
	fmt.Printf(" %6s\n", "+inf")
	for i, d := range r.DiskOrder {
		if *disk >= 0 && d != core.DiskID(*disk) {
			continue
		}
		fmt.Printf("%-6d", d)
		for _, n := range rows[i] {
			fmt.Printf(" %6d", n)
		}
		fmt.Println()
	}
	return nil
}

func cmdAttribute(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens attribute", stderr)
	top := fs.Int("top", 10, "show this many causes (0 = all)")
	metricsFile := fs.String("metrics", "", "check by-state totals bit-exactly against this exported snapshot")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens attribute [-top N] [-metrics FILE] LOG")
	}
	r, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if !r.Complete() {
		return fmt.Errorf("%s: not a complete run capture; attribution needs the full log", fs.Arg(0))
	}
	a := r.Attribute()
	total := a.Total()
	pct := func(j float64) float64 {
		if total == 0 {
			return 0
		}
		return j / total * 100
	}
	fmt.Printf("energy waterfall (%.6g J total):\n", total)
	fmt.Printf("  %-22s %14s %8s\n", "bucket", "joules", "share")
	fmt.Printf("  %-22s %14.6g %7.2f%%\n", "baseline (standby)", a.BaselineJ, pct(a.BaselineJ))
	fmt.Printf("  %-22s %14.6g %7.2f%%\n", "idle (spinning)", a.IdleJ, pct(a.IdleJ))
	fmt.Printf("  %-22s %14.6g %7.2f%%\n", "service (active)", a.ServiceJ, pct(a.ServiceJ))
	fmt.Printf("  %-22s %14.6g %7.2f%%\n", "spin-up cycles", a.SpinUpJ, pct(a.SpinUpJ))
	fmt.Printf("  %-22s %14.6g %7.2f%%\n", "spin-down cycles", a.SpinDownJ, pct(a.SpinDownJ))
	fmt.Printf("spin-ups: %d decision-caused, %d policy/untraced; spin-downs: %d\n",
		a.DecisionSpinUps, a.PolicySpinUps, a.SpinDowns)

	n := len(a.Causes)
	if *top > 0 && n > *top {
		n = *top
	}
	if n > 0 {
		fmt.Printf("\ntop spin-cycle causes by energy:\n")
		fmt.Printf("  %-12s %-22s %8s %10s %14s\n", "cause", "decision", "spin-ups", "spin-downs", "joules")
		for _, c := range a.Causes[:n] {
			who, what := "policy", "idle-threshold expiry"
			if c.Dec != 0 {
				who = fmt.Sprintf("dec %d", c.Dec)
				what = "(untraced decision)"
				if c.HasInfo {
					what = fmt.Sprintf("req %d -> disk %d @ %v", c.Req, c.Disk, c.At)
				}
			}
			fmt.Printf("  %-12s %-22s %8d %10d %14.6g\n", who, what, c.SpinUps, c.SpinDowns, c.Joules)
		}
		if n < len(a.Causes) {
			fmt.Printf("  ... %d more causes\n", len(a.Causes)-n)
		}
	}

	if *metricsFile != "" {
		data, err := os.ReadFile(*metricsFile)
		if err != nil {
			return err
		}
		vals, err := analyze.ParseMetricValues(data)
		if err != nil {
			return err
		}
		for st := core.StateStandby; st <= core.StateSpinDown; st++ {
			key := `esched_energy_joules_total{state="` + st.String() + `"}`
			want, ok := vals[key]
			if !ok {
				return fmt.Errorf("%s lacks %s", *metricsFile, key)
			}
			if got := a.ByState[st]; got != want {
				return fmt.Errorf("attribution diverges from export: %s replayed %v, exported %v", key, got, want)
			}
		}
		fmt.Printf("\nattribution matches %s bit-exactly (5/5 states)\n", *metricsFile)
	}
	return nil
}

// cmdCarbon replays a log through the same accounting integrator a live
// -grid run attaches (account.Accumulator over storage's default power
// model), so its report — windows, gCO2e, dollars — is byte-identical to
// what the live run printed and exported.
func cmdCarbon(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens carbon", stderr)
	grid := fs.String("grid", "flat", "grid profile: flat | diurnal | coal | profile.json")
	costName := fs.String("cost", "default", "cost model: default | model.json")
	windows := fs.Int("windows", 12, "show at most this many window rows (0 = all)")
	metricsFile := fs.String("metrics", "", "check carbon/cost totals bit-exactly against this exported snapshot")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens carbon [-grid P] [-cost M] [-windows N] [-metrics FILE] LOG")
	}
	g, err := account.ResolveGrid(*grid)
	if err != nil {
		return err
	}
	cm, err := account.ResolveCost(*costName)
	if err != nil {
		return err
	}
	evs, err := analyze.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: empty event log", fs.Arg(0))
	}
	acc, err := account.NewAccumulator(storage.DefaultConfig().Power, g, cm)
	if err != nil {
		return err
	}
	for _, ev := range evs {
		acc.Observe(ev)
	}
	rep := acc.Finalize()

	fmt.Printf("carbon accounting: %d events, %d disks, horizon %v\n", acc.Events(), rep.Disks, rep.Horizon)
	n := len(rep.Windows)
	if *windows > 0 && n > *windows {
		n = *windows
	}
	fmt.Printf("  %-14s %-14s %12s %14s %12s\n", "start", "end", "gCO2e/kWh", "energy J", "gCO2e")
	for _, w := range rep.Windows[:n] {
		fmt.Printf("  %-14v %-14v %12.6g %14.6g %12.6g\n", w.Start, w.End, w.Intensity, w.EnergyJ, w.GCO2e)
	}
	if n < len(rep.Windows) {
		fmt.Printf("  ... %d more windows\n", len(rep.Windows)-n)
	}
	fmt.Println(rep.CarbonLine())
	fmt.Println(rep.CostLine())

	if *metricsFile != "" {
		data, err := os.ReadFile(*metricsFile)
		if err != nil {
			return err
		}
		vals, err := analyze.ParseMetricValues(data)
		if err != nil {
			return err
		}
		for key, got := range map[string]float64{
			account.MetricCarbon + `{grid="` + g.Name + `"}`:    rep.GCO2e,
			account.MetricCost + `{component="energy"}`:         rep.EnergyUSD,
			account.MetricCost + `{component="capex"}`:          rep.CapexUSD,
			account.MetricIntensity + `{grid="` + g.Name + `"}`: g.IntensityAt(rep.Horizon),
		} {
			want, ok := vals[key]
			if !ok {
				return fmt.Errorf("%s lacks %s (was the run recorded with -grid %s?)", *metricsFile, key, *grid)
			}
			if got != want {
				return fmt.Errorf("carbon accounting diverges from export: %s replayed %v, exported %v", key, got, want)
			}
		}
		fmt.Printf("carbon accounting matches %s bit-exactly (4/4 series)\n", *metricsFile)
	}
	return nil
}

// cmdWhatif renders the consolidation what-if table: cached sweep cells
// re-priced per policy and consolidation ratio, no re-simulation.
func cmdWhatif(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens whatif", stderr)
	grid := fs.String("grid", "flat", "grid profile: flat | diurnal | coal | profile.json")
	costName := fs.String("cost", "default", "cost model: default | model.json")
	traceName := fs.String("trace", "cello", "workload trace: cello | financial")
	scaleName := fs.String("scale", "small", "experiment scale: small | full")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("usage: tracelens whatif [-grid P] [-cost M] [-trace T] [-scale small|full]")
	}
	g, err := account.ResolveGrid(*grid)
	if err != nil {
		return err
	}
	cm, err := account.ResolveCost(*costName)
	if err != nil {
		return err
	}
	var tr experiments.Trace
	switch *traceName {
	case "cello":
		tr = experiments.Cello
	case "financial":
		tr = experiments.Financial
	default:
		return usagef("unknown -trace %q (want cello or financial)", *traceName)
	}
	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return usagef("unknown -scale %q (want small or full)", *scaleName)
	}
	t, err := experiments.WhatIfTable(scale, tr, g, cm)
	if err != nil {
		return err
	}
	fmt.Print(t.Render())
	return nil
}

func cmdDiff(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens diff", stderr)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usagef("usage: tracelens diff A.LOG B.LOG")
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Printf("A = %s\nB = %s\n\n", fs.Arg(0), fs.Arg(1))
	_, err = analyze.Diff(a, b).WriteTo(os.Stdout)
	return err
}

func cmdVerify(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens verify", stderr)
	metricsFile := fs.String("metrics", "", "exported metrics snapshot to verify against (required)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *metricsFile == "" {
		return usagef("usage: tracelens verify -metrics FILE LOG")
	}
	r, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	exported, err := os.ReadFile(*metricsFile)
	if err != nil {
		return err
	}
	if err := r.VerifyMetrics(exported); err != nil {
		return err
	}
	s := r.Summarize()
	fmt.Printf("verify OK: %d events replay to a byte-identical metrics export (%d requests, %.6g J)\n",
		s.Events, s.Requests, s.Energy)
	return nil
}

// cmdDoctor runs the offline runtime-verification suite over a recorded
// event log. The monitors assume the repo's default Barracuda-class power
// model and Cheetah mechanics (the configuration every simulator entry
// point uses); replica validity additionally needs the placement, which is
// deterministic from its generation parameters — pass the same
// -disks/-blocks/-rf/-z/-seed the run used to enable it.
func cmdDoctor(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens doctor", stderr)
	var (
		disks   = fs.Int("disks", 0, "placement: number of disks (0 = skip the replica-validity monitor)")
		blocks  = fs.Int("blocks", 0, "placement: number of blocks")
		rf      = fs.Int("rf", 3, "placement: replication factor")
		zipf    = fs.Float64("z", 1, "placement: Zipf exponent")
		seed    = fs.Int64("seed", 1, "placement: random seed")
		policy  = fs.String("policy", "2cpm", "power policy the run used: 2cpm | always-on")
		nonFIFO = fs.Bool("nonfifo", false, "the run used a non-FIFO queue discipline (skip FIFO-order checks)")
		shards  = fs.Int("shards", 1, "placement: eschedd decision shards (>1 = rack-local layout, one rack per shard)")
		max     = fs.Int("max", 8, "violations kept verbatim per monitor (all are counted)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens doctor [flags] LOG  (or: tracelens doctor fidelity [flags])")
	}

	cfg := storage.DefaultConfig()
	mcfg := monitor.Config{
		Power:         cfg.Power,
		Mech:          cfg.Mech,
		NonFIFO:       *nonFIFO,
		MaxViolations: *max,
	}
	switch *policy {
	case "2cpm":
		mcfg.Policy = power.TwoCompetitive{Config: cfg.Power}
	case "always-on":
		mcfg.Policy = power.AlwaysOn{}
	default:
		return usagef("unknown policy %q (want 2cpm or always-on)", *policy)
	}
	if *disks > 0 {
		pcfg := placement.GenerateConfig{
			NumDisks: *disks, NumBlocks: *blocks,
			ReplicationFactor: *rf, ZipfExponent: *zipf, Seed: *seed,
		}
		var plc *placement.Placement
		var err error
		if *shards > 1 {
			// A sharded eschedd run serves the rack-local layout; regenerate
			// the same one so replica validation matches.
			plc, err = placement.GenerateRackLocal(pcfg, *shards)
		} else {
			plc, err = placement.Generate(pcfg)
		}
		if err != nil {
			return err
		}
		mcfg.Locations = plc.Locations
	}

	evs, err := analyze.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: empty event log", fs.Arg(0))
	}
	suite := monitor.NewSuite(mcfg)
	suite.ObserveAll(evs)
	// Cross-check the monitor's independently integrated energy against the
	// analyzer's replay of the same log — two implementations, one stream,
	// bit-exact agreement required. Only meaningful on a complete capture.
	if r, err := analyze.New(evs); err == nil && r.Complete() {
		suite.VerifyResult(r.EnergyByState())
	}
	suite.Finish()
	if _, err := suite.WriteReport(os.Stdout); err != nil {
		return err
	}
	if !suite.Passed() {
		return fmt.Errorf("%s: %d invariant violations", fs.Arg(0), suite.Total())
	}
	return nil
}

// cmdDoctorFidelity scores the regenerated seeded sweep against the
// committed golden envelope (or writes a fresh envelope with -write). Every
// simulated cell also runs under live invariant monitoring, so a pass
// certifies both the numbers and the invariants.
func cmdDoctorFidelity(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens doctor fidelity", stderr)
	var (
		envPath = fs.String("envelopes", "", "score against this envelope file instead of the embedded golden one")
		write   = fs.String("write", "", "regenerate the envelope and write it to this file instead of scoring")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("usage: tracelens doctor fidelity [-envelopes FILE] [-write FILE]")
	}
	scale := experiments.FidelityScale()
	scale.Doctor = true
	if *write != "" {
		env, err := experiments.GenerateEnvelopes(scale)
		if err != nil {
			return err
		}
		if err := env.Write(*write); err != nil {
			return err
		}
		fmt.Printf("fidelity: envelope written to %s (%d figures, %s/%d disks/%d reqs/seed %d)\n",
			*write, len(env.Figures), env.Trace, env.Disks, env.Requests, env.Seed)
		return nil
	}
	env, err := experiments.LoadEnvelopes(*envPath)
	if err != nil {
		return err
	}
	sc, err := experiments.ScoreFidelity(scale, env)
	if err != nil {
		return err
	}
	if _, err := sc.WriteReport(os.Stdout); err != nil {
		return err
	}
	if !sc.Passed() {
		return fmt.Errorf("fidelity scorecard failed")
	}
	return nil
}
