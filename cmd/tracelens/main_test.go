package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI's exit-code contract: 0 for success and
// help, 2 for usage mistakes (with usage text on stderr), 1 for
// operational failures.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr ("" = no requirement)
	}{
		{"no args", nil, 2, "usage: tracelens"},
		{"unknown subcommand", []string{"frobnicate"}, 2, `unknown subcommand "frobnicate"`},
		{"unknown subcommand shows usage", []string{"frobnicate"}, 2, "usage: tracelens"},
		{"top-level help", []string{"-h"}, 0, "usage: tracelens"},
		{"top-level help word", []string{"help"}, 0, "usage: tracelens"},
		{"subcommand help", []string{"summary", "-h"}, 0, "tracelens summary"},
		{"bad flag", []string{"summary", "-no-such-flag"}, 2, "flag provided but not defined"},
		{"missing log arg", []string{"summary"}, 2, "usage: tracelens summary LOG"},
		{"timeline arity", []string{"timeline", "a", "b"}, 2, "usage: tracelens timeline"},
		{"attribute bad flag", []string{"attribute", "-top=x", "log"}, 2, "invalid value"},
		{"carbon arity", []string{"carbon"}, 2, "usage: tracelens carbon"},
		{"whatif rejects args", []string{"whatif", "stray"}, 2, "usage: tracelens whatif"},
		{"whatif bad trace", []string{"whatif", "-trace", "nope"}, 2, `unknown -trace "nope"`},
		{"verify needs metrics", []string{"verify", "log"}, 2, "usage: tracelens verify -metrics FILE LOG"},
		{"diff arity", []string{"diff", "only-one"}, 2, "usage: tracelens diff"},
		{"doctor bad policy", []string{"doctor", "-policy", "warp", "log"}, 2, `unknown policy "warp"`},
		{"doctor fidelity arity", []string{"doctor", "fidelity", "stray"}, 2, "usage: tracelens doctor fidelity"},
		{"shards arity", []string{"shards"}, 2, "usage: tracelens shards"},
		{"last arity", []string{"last", "a", "b"}, 2, "usage: tracelens last"},
		{"shards missing file", []string{"shards", "/no/such/stats.json"}, 1, "no/such/stats.json"},
		{"last missing dir", []string{"last", "/no/such/dir"}, 1, "no/such/dir"},
		{"missing log file", []string{"summary", "/no/such/file.events"}, 1, "no/such/file.events"},
		{"carbon missing log file", []string{"carbon", "/no/such/file.events"}, 1, "no/such/file.events"},
		{"carbon bad grid file", []string{"carbon", "-grid", "/no/such/grid.json", "testdata-absent.events"}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			code := run(c.args, &stderr)
			if code != c.code {
				t.Fatalf("run(%q) = %d, want %d (stderr: %s)", c.args, code, c.code, stderr.String())
			}
			if c.stderr != "" && !strings.Contains(stderr.String(), c.stderr) {
				t.Fatalf("run(%q) stderr %q lacks %q", c.args, stderr.String(), c.stderr)
			}
			if code == 2 && stderr.Len() == 0 {
				t.Fatalf("run(%q): usage error with empty stderr", c.args)
			}
		})
	}
}

// TestSummaryEmptyLog pins the empty-log contract: summary over a log with
// no events prints an explicit zero-event line and exits 0, instead of an
// opaque analysis error.
func TestSummaryEmptyLog(t *testing.T) {
	log := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(log, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var stderr bytes.Buffer
	code := run([]string{"summary", log}, &stderr)
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	r.Close()
	if code != 0 {
		t.Fatalf("summary on empty log exits %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(string(out), "0 (empty log)") {
		t.Fatalf("stdout %q lacks the explicit zero-event line", out)
	}
}
