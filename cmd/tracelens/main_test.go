package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI's exit-code contract: 0 for success and
// help, 2 for usage mistakes (with usage text on stderr), 1 for
// operational failures.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr ("" = no requirement)
	}{
		{"no args", nil, 2, "usage: tracelens"},
		{"unknown subcommand", []string{"frobnicate"}, 2, `unknown subcommand "frobnicate"`},
		{"unknown subcommand shows usage", []string{"frobnicate"}, 2, "usage: tracelens"},
		{"top-level help", []string{"-h"}, 0, "usage: tracelens"},
		{"top-level help word", []string{"help"}, 0, "usage: tracelens"},
		{"subcommand help", []string{"summary", "-h"}, 0, "tracelens summary"},
		{"bad flag", []string{"summary", "-no-such-flag"}, 2, "flag provided but not defined"},
		{"missing log arg", []string{"summary"}, 2, "usage: tracelens summary LOG"},
		{"timeline arity", []string{"timeline", "a", "b"}, 2, "usage: tracelens timeline"},
		{"attribute bad flag", []string{"attribute", "-top=x", "log"}, 2, "invalid value"},
		{"carbon arity", []string{"carbon"}, 2, "usage: tracelens carbon"},
		{"whatif rejects args", []string{"whatif", "stray"}, 2, "usage: tracelens whatif"},
		{"whatif bad trace", []string{"whatif", "-trace", "nope"}, 2, `unknown -trace "nope"`},
		{"verify needs metrics", []string{"verify", "log"}, 2, "usage: tracelens verify -metrics FILE LOG"},
		{"diff arity", []string{"diff", "only-one"}, 2, "usage: tracelens diff"},
		{"doctor bad policy", []string{"doctor", "-policy", "warp", "log"}, 2, `unknown policy "warp"`},
		{"doctor fidelity arity", []string{"doctor", "fidelity", "stray"}, 2, "usage: tracelens doctor fidelity"},
		{"missing log file", []string{"summary", "/no/such/file.events"}, 1, "no/such/file.events"},
		{"carbon missing log file", []string{"carbon", "/no/such/file.events"}, 1, "no/such/file.events"},
		{"carbon bad grid file", []string{"carbon", "-grid", "/no/such/grid.json", "testdata-absent.events"}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			code := run(c.args, &stderr)
			if code != c.code {
				t.Fatalf("run(%q) = %d, want %d (stderr: %s)", c.args, code, c.code, stderr.String())
			}
			if c.stderr != "" && !strings.Contains(stderr.String(), c.stderr) {
				t.Fatalf("run(%q) stderr %q lacks %q", c.args, stderr.String(), c.stderr)
			}
			if code == 2 && stderr.Len() == 0 {
				t.Fatalf("run(%q): usage error with empty stderr", c.args)
			}
		})
	}
}
