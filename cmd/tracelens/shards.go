package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/simkernel"
)

// cmdShards renders the per-shard kernel telemetry report over a
// KernelStats JSON snapshot (figures -fleet -kernelstats FILE, eschedd
// /state, or a flight dump's telemetry.json).
func cmdShards(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens shards", stderr)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens shards STATS.json")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var ks simkernel.KernelStats
	if err := json.Unmarshal(data, &ks); err != nil {
		return fmt.Errorf("%s: not a kernel telemetry snapshot: %w", fs.Arg(0), err)
	}
	if len(ks.Shards) == 0 {
		return fmt.Errorf("%s: snapshot holds no shards", fs.Arg(0))
	}
	return writeShardReport(os.Stdout, &ks)
}

// writeShardReport renders the shards table, the straggler line and — on a
// timed snapshot — the wall-clock attribution line.
func writeShardReport(w io.Writer, ks *simkernel.KernelStats) error {
	mode := "counters only (telemetry off)"
	if ks.Timed {
		mode = "timed"
	}
	fmt.Fprintf(w, "kernel telemetry: %d shards, %d events (%d coordinator), %s\n",
		len(ks.Shards), ks.Events, ks.CoordEvents, mode)
	fmt.Fprintf(w, "  %5s %10s %6s %6s %6s %6s %10s %10s %6s %6s %6s %8s %8s\n",
		"shard", "events", "exec%", "queue%", "stall%", "slot%",
		"pushes", "pops", "rebld", "recal", "migr", "farHW", "poolHW")
	wall := ks.WallNS
	for i := range ks.Shards {
		s := &ks.Shards[i]
		pct := func(ns int64) string {
			if !ks.Timed || wall <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", float64(ns)/float64(wall)*100)
		}
		slot := "-"
		if s.Events > 0 {
			slot = fmt.Sprintf("%.1f", float64(s.SlotHits)/float64(s.Events)*100)
		}
		fmt.Fprintf(w, "  %5d %10d %6s %6s %6s %6s %10d %10d %6d %6d %6d %8d %8d\n",
			s.Shard, s.Events, pct(s.ExecNS), pct(s.QueueNS), pct(s.StallNS), slot,
			s.Pushes, s.Pops, s.Rebuilds, s.Recalibrations, s.Migrations,
			s.FarHighWater, s.PoolHighWater)
	}
	if st := ks.Straggler(); st >= 0 {
		s := &ks.Shards[st]
		line := fmt.Sprintf("straggler: shard %d (%d events", st, s.Events)
		if ks.Timed {
			line += fmt.Sprintf(", busy %v", time.Duration(s.BusyNS()))
		}
		fmt.Fprintln(w, line+")")
	}
	if ks.Timed {
		exec, queue, stall, cov := ks.Attribution()
		denom := float64(wall) * float64(len(ks.Shards))
		share := func(ns int64) float64 {
			if denom <= 0 {
				return 0
			}
			return float64(ns) / denom * 100
		}
		fmt.Fprintf(w, "attribution: execute %.1f%% + queue ops %.1f%% + stall %.1f%% = %.1f%% of %d x %v wall (merge %v)\n",
			share(exec), share(queue), share(stall), cov*100,
			len(ks.Shards), time.Duration(wall), time.Duration(ks.MergeNS))
	} else {
		fmt.Fprintln(w, "wall-clock attribution off: arm telemetry (figures -fleet -kernelstats, eschedd, or FleetConfig.Telemetry) to bucket execute/queue/stall time")
	}
	return nil
}

// cmdLast inspects the most recent flight-recorder dump under a directory.
func cmdLast(args []string, stderr io.Writer) error {
	fs := newFlagSet("tracelens last", stderr)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: tracelens last DIR")
	}
	dir, err := flight.FindLatest(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := flight.ReadDump(dir)
	if err != nil {
		return err
	}
	fmt.Printf("flight dump   %s\n", d.Dir)
	fmt.Printf("trigger       %s\n", d.Meta.Reason)
	fmt.Printf("captured      %s\n", d.Meta.CapturedAt.Format(time.RFC3339))
	wrapped := "no (full run prefix)"
	if d.Meta.Wrapped {
		wrapped = "yes (window is a suffix)"
	}
	fmt.Printf("events        %d of %d observed, wrapped: %s\n", d.Meta.Events, d.Meta.Observed, wrapped)
	if len(d.Events) > 0 {
		first, last := d.Events[0], d.Events[len(d.Events)-1]
		fmt.Printf("window        seq %d..%d, t %v..%v\n", first.Seq, last.Seq, first.At, last.At)
	}
	fmt.Printf("goroutines    %d\n", d.Meta.Goroutines)
	for _, name := range []string{"goroutine.txt", "heap.pprof"} {
		if _, err := os.Stat(dir + "/" + name); err == nil {
			fmt.Printf("profile       %s\n", name)
		}
	}
	if d.Telemetry != nil {
		var ks simkernel.KernelStats
		if err := json.Unmarshal(d.Telemetry, &ks); err == nil && len(ks.Shards) > 0 {
			fmt.Println()
			return writeShardReport(os.Stdout, &ks)
		}
		fmt.Println("telemetry     telemetry.json (unrecognised layout)")
	}
	return nil
}
