// Command eschedd is the online serving daemon for energy-aware replica
// scheduling: where esched replays a complete trace in batch, eschedd
// keeps the simulated disk population live and serves streaming Eq. 6
// scheduling decisions over HTTP (see docs/SERVING.md).
//
//	eschedd serve   -addr :8080 -disks 180 -rf 3            # the daemon
//	eschedd loadgen -addr HOST:PORT -requests 50000         # drive it, SLO report
//	eschedd probe   -addr HOST:PORT                         # healthz + metrics check
//
// serve builds the placement from the same flags esched uses
// (-disks/-blocks/-rf/-z/-seed), so an event log written with -events can
// be replayed and invariant-checked offline with
//
//	tracelens doctor -disks N -blocks B -rf R -z Z -seed S LOG
//
// -shards N partitions the fleet into N per-rack decision shards, each
// with its own lock-free admission ring and decision loop; the placement
// switches to the rack-local layout (replicas inside the original's rack)
// so every decision stays shard-local. Pass the same -shards to tracelens
// doctor when replaying such a log.
//
// On SIGTERM/SIGINT the daemon drains gracefully: new requests get 503,
// admitted ones are decided, outstanding disk work completes, and the
// final accounting (energy, spin operations, served/dropped) is printed
// with the metrics export reconciled bit-exactly to the power meters.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "loadgen":
		err = runLoadgen(os.Args[2:])
	case "probe":
		err = runProbe(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eschedd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: eschedd <serve|loadgen|probe> [flags]

  serve    run the scheduling daemon (eschedd serve -h)
  loadgen  drive a running daemon and print an SLO report (eschedd loadgen -h)
  probe    check /healthz and /metrics of a running daemon (eschedd probe -h)`)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("eschedd serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (\":0\" = ephemeral)")
		addrFile  = fs.String("addrfile", "", "write the bound address to this file (for scripts)")
		disks     = fs.Int("disks", 180, "number of disks")
		blocks    = fs.Int("blocks", 30000, "number of blocks")
		rf        = fs.Int("rf", 3, "data replication factor")
		zipf      = fs.Float64("z", 1, "data locality Zipf exponent (0 = uniform)")
		seed      = fs.Int64("seed", 1, "random seed")
		mode      = fs.String("mode", "heuristic", "decision path: heuristic | wsc")
		alpha     = fs.Float64("alpha", 0.2, "cost-function energy/performance mix")
		beta      = fs.Float64("beta", 10, "cost-function unit scale")
		queue     = fs.Int("queue", 4096, "admission bound (queue-full submissions get 429)")
		roundMax  = fs.Int("roundmax", 512, "max requests decided per round")
		deadline  = fs.Duration("deadline", 0, "default per-request decision deadline (0 = none)")
		shards    = fs.Int("shards", 1, "decision shards (>1 switches to the rack-local placement, one rack per shard)")
		events    = fs.String("events", "", "stream the event log to this file (JSONL; .bin = binary)")
		metrics   = fs.String("metrics", "", `write a final Prometheus snapshot at drain ("-" = stdout)`)
		doctor    = fs.Bool("doctor", false, "run live invariant monitors; non-zero exit on violation")
		grid      = fs.String("grid", "", "carbon grid profile: flat | diurnal | coal | profile.json (off when empty)")
		costName  = fs.String("cost", "default", "cost model: default | model.json (used with -grid)")
		flightDir = fs.String("flight", "", "flight-recorder dump directory (off when empty; SIGQUIT forces a dump)")
		flightSLO = fs.Duration("flight-slo", 0, "submit-to-reply bound whose first breach triggers a flight dump (0 = off)")
	)
	fs.Parse(args)

	pcfg := placement.GenerateConfig{
		NumDisks: *disks, NumBlocks: *blocks,
		ReplicationFactor: *rf, ZipfExponent: *zipf, Seed: *seed,
	}
	var plc *placement.Placement
	var err error
	if *shards > 1 {
		// Sharded decisions need shard-local replica sets: rack-local
		// placement with one rack per decision shard.
		plc, err = placement.GenerateRackLocal(pcfg, *shards)
	} else {
		plc, err = placement.Generate(pcfg)
	}
	if err != nil {
		return err
	}
	pc := power.DefaultConfig()
	cfg := serve.Config{
		System: storage.Config{
			NumDisks: *disks,
			Power:    pc,
			Mech:     diskmodel.Cheetah15K5(),
			Policy:   power.TwoCompetitive{Config: pc},
		},
		Router:      serve.NewRouter(plc, 0),
		Shards:      *shards,
		Cost:        sched.CostConfig{Alpha: *alpha, Beta: *beta, Power: pc},
		MaxInFlight: *queue,
		RoundMax:    *roundMax,
		Deadline:    *deadline,
	}
	switch *mode {
	case "heuristic":
		cfg.Mode = serve.ModeHeuristic
	case "wsc":
		cfg.Mode = serve.ModeWSC
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	col := obs.NewCollector()
	cfg.Collector = col
	var eventsBuf *bufio.Writer
	var eventsOut *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		eventsOut = f
		eventsBuf = bufio.NewWriterSize(f, 1<<20)
		cfg.Tracer = obs.NewTracer(0)
		cfg.Tracer.SetSink(eventsBuf, strings.HasSuffix(*events, ".bin"))
	}
	var suite *monitor.Suite
	if *doctor {
		if cfg.Tracer == nil {
			// Monitors ride the tracer's observer hook; a minimal ring is
			// enough when no -events log was requested.
			cfg.Tracer = obs.NewTracer(1)
		}
		suite = monitor.NewSuite(monitor.Config{
			Power: pc, Mech: cfg.System.Mech, Policy: cfg.System.Policy,
			Locations: plc.Locations,
		})
		cfg.Monitor = suite
	}

	var acc *account.Accumulator
	if *grid != "" {
		g, err := account.ResolveGrid(*grid)
		if err != nil {
			return err
		}
		cm, err := account.ResolveCost(*costName)
		if err != nil {
			return err
		}
		if acc, err = account.NewAccumulator(pc, g, cm); err != nil {
			return err
		}
		acc.Bind(col)
		cfg.Accounting = acc
	}

	var rec *flight.Recorder
	if *flightDir != "" {
		rec = flight.New(flight.Config{Dir: *flightDir, Pprof: true})
		cfg.Flight = rec
		cfg.FlightSLO = *flightSLO
	}

	eng, err := serve.New(cfg)
	if err != nil {
		return err
	}
	srv := serve.NewServer(eng, col)
	bound, shutdown, err := srv.Serve(*addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "eschedd: serving on %s (%d disks, %d blocks, rf=%d, mode=%s, shards=%d)\n",
		bound, *disks, *blocks, *rf, *mode, *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	var quit chan os.Signal
	if rec != nil {
		// SIGQUIT freezes the flight recorder's window without draining.
		quit = make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
	}
	var s os.Signal
wait:
	for {
		select {
		case s = <-sig:
			break wait
		case <-quit:
			fmt.Fprintln(os.Stderr, "eschedd: SIGQUIT — flight dump requested")
			rec.RequestDump("sigquit")
			eng.FlushFlight()
		}
	}
	fmt.Fprintf(os.Stderr, "eschedd: %v — draining\n", s)

	res, runErr := eng.Drain()
	if err := shutdown(); err != nil && runErr == nil {
		runErr = err
	}
	if eventsBuf != nil {
		ferr := eventsBuf.Flush()
		if err := eventsOut.Close(); ferr == nil {
			ferr = err
		}
		if ferr != nil && runErr == nil {
			runErr = fmt.Errorf("event log %s: %w", *events, ferr)
		}
		fmt.Fprintf(os.Stderr, "eschedd: event log flushed to %s\n", *events)
	}
	if *metrics != "" {
		if err := writeMetrics(col, *metrics); err != nil && runErr == nil {
			runErr = err
		}
	}
	if res != nil {
		fmt.Printf("decisions: %d\n", eng.Decisions())
		fmt.Printf("energy: %.0f J (%.3f of always-on %.0f J) over %s\n",
			res.Energy, res.NormalizedEnergy(), res.AlwaysOnEnergy, res.Horizon.Round(time.Second))
		fmt.Printf("spin operations: %d up / %d down\n", res.SpinUps, res.SpinDowns)
		fmt.Printf("requests: %d served, %d dropped\n", res.Served, res.Dropped)
		if acc != nil {
			rep := acc.Finalize()
			fmt.Println(rep.CarbonLine())
			fmt.Println(rep.CostLine())
		}
	}
	if rec != nil {
		if n := rec.Dumps(); n > 0 {
			fmt.Fprintf(os.Stderr, "eschedd: flight recorder wrote %d dump(s) under %s (tracelens last %s)\n",
				n, *flightDir, *flightDir)
		}
		if err := rec.Err(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if suite != nil && runErr == nil {
		if _, err := suite.WriteReport(os.Stderr); err != nil {
			return err
		}
		if !suite.Passed() {
			runErr = fmt.Errorf("doctor: invariant violations on the serving run")
		}
	}
	return runErr
}

func writeMetrics(c *obs.Collector, path string) error {
	if path == "-" {
		_, err := c.WriteTo(os.Stdout)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := c.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("metrics %s: %w", path, werr)
	}
	fmt.Fprintf(os.Stderr, "eschedd: metrics snapshot written to %s\n", path)
	return nil
}

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("eschedd loadgen", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "daemon address")
		requests = fs.Int("requests", 10000, "number of requests to send")
		blocks   = fs.Int("blocks", 30000, "block space to draw from (match the daemon)")
		wl       = fs.String("workload", "cello", "arrival/popularity model: cello | financial | uniform")
		seed     = fs.Int64("seed", 1, "random seed")
		conns    = fs.Int("conns", 8, "concurrent connections (closed loop) / senders (open loop)")
		loop     = fs.String("loop", "closed", "closed (next request after response) | open (fixed rate)")
		rate     = fs.Float64("rate", 5000, "open-loop arrival rate, requests/sec")
		batch    = fs.Int("batch", 1, "requests per POST (>1 uses the compact batch endpoint)")
	)
	fs.Parse(args)
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1")
	}

	// Draw the block sequence from the workload model so popularity skew
	// matches the trace-driven batch experiments.
	var seq []core.BlockID
	switch *wl {
	case "cello":
		seq = blockSeq(workload.CelloLike(*requests, *blocks, *seed))
	case "financial":
		seq = blockSeq(workload.FinancialLike(*requests, *blocks, *seed))
	case "uniform":
		rng := rand.New(rand.NewSource(*seed))
		seq = make([]core.BlockID, *requests)
		for i := range seq {
			seq[i] = core.BlockID(rng.Intn(*blocks))
		}
	default:
		return fmt.Errorf("unknown -workload %q", *wl)
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}
	if err := checkHealth(client, base); err != nil {
		return err
	}
	startState, err := getState(client, base)
	if err != nil {
		return err
	}

	// lat is the SLO latency series. In the open loop it is measured from
	// each request's *intended* send time on the fixed-rate schedule, not
	// from the actual POST — the coordinated-omission correction: a stalled
	// client would otherwise stop sampling exactly while the daemon is slow
	// and underreport the tail. service keeps the uncorrected POST-to-reply
	// times so the report can show the correction's size.
	lat := make([]time.Duration, 0, len(seq))
	service := make([]time.Duration, 0, len(seq))
	var mu sync.Mutex
	var sent, rejected, failed int64
	record := func(corrected, svc time.Duration, n, rej int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failed++
			return
		}
		sent += int64(n)
		rejected += int64(rej)
		for i := 0; i < n; i++ {
			lat = append(lat, corrected)
			service = append(service, svc)
		}
	}

	open := *loop == "open"
	start := time.Now()
	if open {
		if err := openLoop(client, base, seq, *conns, *rate, *batch, record); err != nil {
			return err
		}
	} else {
		closedLoop(client, base, seq, *conns, *batch, record)
	}
	wall := time.Since(start)

	endState, err := getState(client, base)
	if err != nil {
		return err
	}
	return report(os.Stdout, lat, service, open, *batch, wall, sent, rejected, failed, startState, endState)
}

// blockSeq strips a generated trace down to its block sequence.
func blockSeq(rs []core.Request) []core.BlockID {
	out := make([]core.BlockID, len(rs))
	for i, r := range rs {
		out[i] = r.Block
	}
	return out
}

func closedLoop(client *http.Client, base string, reqs []core.BlockID, conns, batch int,
	record func(corrected, service time.Duration, n, rej int, err error)) {
	var next int64
	var mu sync.Mutex
	take := func() []core.BlockID {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(len(reqs)) {
			return nil
		}
		end := next + int64(batch)
		if end > int64(len(reqs)) {
			end = int64(len(reqs))
		}
		out := reqs[next:end]
		next = end
		return out
	}
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				chunk := take()
				if chunk == nil {
					return
				}
				// Closed loop: the next request waits for this response, so
				// intended and actual send coincide — no correction to apply.
				d, n, rej, err := post(client, base, chunk)
				record(d, d, n, rej, err)
			}
		}()
	}
	wg.Wait()
}

func openLoop(client *http.Client, base string, reqs []core.BlockID, conns int, rate float64, batch int,
	record func(corrected, service time.Duration, n, rej int, err error)) error {
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive for the open loop")
	}
	interval := time.Duration(float64(time.Second) * float64(batch) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, conns)
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	start := time.Now()
	for next, k := 0, 0; next < len(reqs); k++ {
		<-tick.C
		// The k-th chunk belongs at start + k·interval on the fixed-rate
		// schedule. Latency is measured against that intended send time, so
		// ticker lag and sender stalls show up as latency instead of being
		// silently omitted from the sample (coordinated omission).
		intended := start.Add(time.Duration(k) * interval)
		end := next + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		chunk := reqs[next:end]
		next = end
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				d, n, rej, err := post(client, base, chunk)
				record(time.Since(intended), d, n, rej, err)
				<-sem
			}()
		default:
			// Open loop: the system can't keep up — count as rejected
			// rather than queue unboundedly at the client.
			record(0, 0, 0, len(chunk), nil)
		}
	}
	wg.Wait()
	return nil
}

// post sends one chunk (single JSON request or compact batch) and returns
// the per-request latency, how many were decided and how many rejected.
func post(client *http.Client, base string, chunk []core.BlockID) (time.Duration, int, int, error) {
	t0 := time.Now()
	if len(chunk) == 1 {
		body := fmt.Sprintf(`{"block": %d}`, chunk[0])
		resp, err := client.Post(base+"/v1/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, 0, 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return time.Since(t0), 1, 0, nil
		}
		return time.Since(t0), 0, 1, nil
	}
	var sb strings.Builder
	for _, b := range chunk {
		fmt.Fprintf(&sb, "%d\n", b)
	}
	resp, err := client.Post(base+"/v1/schedule/batch", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		return 0, 0, 0, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return time.Since(t0), 0, len(chunk), nil
	}
	ok, rej := 0, 0
	for _, ln := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(ln, "!") {
			rej++
		} else if ln != "" {
			ok++
		}
	}
	return time.Since(t0), ok, rej, nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon not healthy: /healthz = %d", resp.StatusCode)
	}
	return nil
}

// stateSnap is the subset of /state the loadgen reports on.
type stateSnap struct {
	Decisions uint64           `json:"decisions"`
	Served    int              `json:"served"`
	Dropped   int              `json:"dropped"`
	EnergyJ   float64          `json:"energy_j"`
	SpinUps   int              `json:"spin_ups"`
	NowUS     int64            `json:"now_us"`
	CarbonG   float64          `json:"carbon_gco2e"`
	CostUSD   float64          `json:"cost_usd"`
	Slow      []serve.SlowSpan `json:"slow_requests"`
}

func getState(client *http.Client, base string) (stateSnap, error) {
	var st stateSnap
	resp, err := client.Get(base + "/state")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/state = %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// report prints the latency/energy SLO report. lat carries the SLO series
// (intended-send basis in the open loop); service the uncorrected
// POST-to-reply times, reported as a correction delta when they diverge.
func report(w io.Writer, lat, service []time.Duration, open bool, batch int, wall time.Duration,
	sent, rejected, failed int64, start, end stateSnap) error {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sort.Slice(service, func(i, j int) bool { return service[i] < service[j] })
	pctOf := func(sl []time.Duration, p float64) time.Duration {
		if len(sl) == 0 {
			return 0
		}
		i := int(p / 100 * float64(len(sl)-1))
		return sl[i]
	}
	pct := func(p float64) time.Duration { return pctOf(lat, p) }
	decided := end.Decisions - start.Decisions
	energy := end.EnergyJ - start.EnergyJ
	fmt.Fprintf(w, "loadgen: %d decided, %d rejected, %d failed in %s (%.0f decisions/sec)\n",
		sent, rejected, failed, wall.Round(time.Millisecond), float64(sent)/wall.Seconds())
	fmt.Fprintf(w, "latency: p50 %s  p99 %s  p99.9 %s  max %s\n",
		pct(50).Round(time.Microsecond), pct(99).Round(time.Microsecond),
		pct(99.9).Round(time.Microsecond), pct(100).Round(time.Microsecond))
	if batch > 1 {
		// Batched POSTs amortize one round trip over the whole chunk; the
		// per-request share is what a single decision effectively cost.
		amort := func(p float64) time.Duration { return pct(p) / time.Duration(batch) }
		fmt.Fprintf(w, "amortized per request (batch %d): p50 %s  p99 %s  max %s\n",
			batch, amort(50).Round(time.Microsecond), amort(99).Round(time.Microsecond),
			amort(100).Round(time.Microsecond))
	}
	if open {
		// Show how much the coordinated-omission correction moved the tail:
		// the service series is what a naive send-to-reply measurement would
		// have reported.
		mp99, cp99 := pctOf(service, 99), pct(99)
		fmt.Fprintf(w, "coordinated omission: uncorrected p99 %s, corrected p99 %s (delta %s)\n",
			mp99.Round(time.Microsecond), cp99.Round(time.Microsecond),
			(cp99 - mp99).Round(time.Microsecond))
	}
	for i, s := range end.Slow {
		if i == 3 {
			break
		}
		fmt.Fprintf(w, "slow exemplar: req %d block %d disk %d decision %d — total %s (queue %s, decide %s, dispatch %s)\n",
			s.Req, s.Block, s.Disk, s.Decision,
			time.Duration(s.TotalUS)*time.Microsecond,
			time.Duration(s.QueueUS)*time.Microsecond,
			time.Duration(s.DecideUS)*time.Microsecond,
			time.Duration(s.DispatchUS)*time.Microsecond)
	}
	if decided > 0 {
		fmt.Fprintf(w, "energy: %.1f J settled across the run window, %.3f J per 1k requests (daemon decisions %d)\n",
			energy, energy/float64(decided)*1000, decided)
	}
	if end.CarbonG > 0 || end.CostUSD > 0 {
		// The daemon runs with -grid: report the settled carbon/cost delta
		// over the load window alongside the energy SLO.
		carbon := end.CarbonG - start.CarbonG
		cost := end.CostUSD - start.CostUSD
		perK := 0.0
		if decided > 0 {
			perK = carbon / float64(decided) * 1000
		}
		fmt.Fprintf(w, "carbon: %.6g gCO2e settled across the run window (%.6g gCO2e/1k requests)\n",
			carbon, perK)
		fmt.Fprintf(w, "cost: %.6g USD settled across the run window\n", cost)
	}
	fmt.Fprintf(w, "daemon: served %d, dropped %d, spin-ups %d, virtual time %s\n",
		end.Served, end.Dropped, end.SpinUps,
		(time.Duration(end.NowUS) * time.Microsecond).Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("loadgen: %d requests failed at transport level", failed)
	}
	return nil
}

func runProbe(args []string) error {
	fs := flag.NewFlagSet("eschedd probe", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "daemon address")
	fs.Parse(args)
	base := "http://" + *addr
	client := &http.Client{Timeout: 10 * time.Second}
	if err := checkHealth(client, base); err != nil {
		return err
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "esched_") {
		return fmt.Errorf("/metrics exposes no esched_ series")
	}
	st, err := getState(client, base)
	if err != nil {
		return err
	}
	fmt.Printf("ok: healthz healthy, %d metric bytes, %d decisions, %.1f J settled\n",
		len(body), st.Decisions, st.EnergyJ)
	return nil
}
