// Command tracegen generates a synthetic block I/O trace (Cello-like or
// Financial1-like, Section 4.1) and writes it in SPC or SRT-text format,
// so external tools — or esched itself via -trace — can consume it.
//
//	tracegen -workload cello -n 70000 -blocks 30000 -format spc > cello.spc
package main

import (
	"bufio"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 70000, "number of requests")
		blocks   = flag.Int("blocks", 30000, "number of unique blocks")
		seed     = flag.Int64("seed", 1, "random seed")
		workload = flag.String("workload", "cello", "cello | financial")
		format   = flag.String("format", "spc", "spc | cellotext")
		out      = flag.String("o", "-", "output file (- = stdout)")
	)
	flag.Parse()

	var reqs []repro.Request
	switch *workload {
	case "cello":
		reqs = repro.CelloLike(*n, *blocks, *seed)
	case "financial":
		reqs = repro.FinancialLike(*n, *blocks, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	var tf repro.TraceFormat
	switch *format {
	case "spc":
		tf = repro.FormatSPC
	case "cellotext":
		tf = repro.FormatCelloText
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		if strings.HasSuffix(*out, ".gz") {
			gz := gzip.NewWriter(f)
			defer gz.Close()
			w = gz
		}
	}
	bw := bufio.NewWriter(w)
	if err := repro.WriteTrace(bw, tf, reqs); err != nil {
		return err
	}
	return bw.Flush()
}
