// Command breakeven prints the 2CPM power configuration (the paper's
// Figure 5) and the quantities derived from it: the breakeven idleness
// threshold T_B, the replacement window, and the per-request worst-case
// energy. Flags override individual parameters for what-if analysis.
//
// With -events/-metrics the command also simulates a one-disk
// demonstration of the configured model — requests spaced around the
// break-even threshold so the 2CPM policy's spin cycles are visible — and
// records it through the standard observability layer (analyze the log
// with tracelens; see docs/OBSERVABILITY.md). -doctor runs the same
// demonstration under live invariant monitoring and exits non-zero on any
// violation. The shared profiling flags
// -cpuprofile, -memprofile, -tracefile and -pprof are available for
// parity with esched and figures.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "breakeven:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := repro.DefaultPowerConfig()
	var (
		idle    = flag.Float64("idle", cfg.IdlePower, "idle power P_I (W)")
		active  = flag.Float64("active", cfg.ActivePower, "active power (W)")
		standby = flag.Float64("standby", cfg.StandbyPower, "standby power (W)")
		eup     = flag.Float64("eup", cfg.SpinUpEnergy, "spin-up energy (J)")
		edown   = flag.Float64("edown", cfg.SpinDownEnergy, "spin-down energy (J)")
		tup     = flag.Duration("tup", cfg.SpinUpTime, "spin-up time")
		tdown   = flag.Duration("tdown", cfg.SpinDownTime, "spin-down time")
		events  = flag.String("events", "", "record the demonstration run's event log to this file (JSONL; .bin = binary)")
		metrics = flag.String("metrics", "", `write the demonstration run's metrics snapshot ("-" = stdout)`)
		doctor  = flag.Bool("doctor", false, "run live invariant monitors over the demonstration run; non-zero exit on any violation")
	)
	var prof repro.Profiles
	prof.RegisterFlagsTraceName(flag.CommandLine, "tracefile")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "breakeven: profiles:", err)
		}
	}()

	cfg.IdlePower = *idle
	cfg.ActivePower = *active
	cfg.StandbyPower = *standby
	cfg.SpinUpEnergy = *eup
	cfg.SpinDownEnergy = *edown
	cfg.SpinUpTime = *tup
	cfg.SpinDownTime = *tdown
	if err := cfg.Validate(); err != nil {
		return err
	}

	if cfg == repro.DefaultPowerConfig() {
		fmt.Print(experiments.Figure5().Render())
	} else {
		fmt.Printf("idle %.1f W, active %.1f W, standby %.1f W\n", cfg.IdlePower, cfg.ActivePower, cfg.StandbyPower)
		fmt.Printf("spin-up %.0f J / %s, spin-down %.0f J / %s\n",
			cfg.SpinUpEnergy, cfg.SpinUpTime, cfg.SpinDownEnergy, cfg.SpinDownTime)
	}
	fmt.Printf("\nderived:\n")
	fmt.Printf("  breakeven time T_B           %s\n", cfg.Breakeven().Round(time.Millisecond))
	fmt.Printf("  replacement window T_B+T_up+T_down  %s\n", cfg.ReplacementWindow().Round(time.Millisecond))
	fmt.Printf("  max per-request energy       %.1f J\n", cfg.MaxRequestEnergy())
	fmt.Printf("  idle:standby power ratio     %.1fx\n", cfg.IdlePower/cfg.StandbyPower)

	if *events == "" && *metrics == "" && !*doctor {
		return nil
	}
	return demoRun(cfg, *events, *metrics, *doctor)
}

// demoRun simulates one disk under the configured model with arrivals
// spaced to straddle the break-even threshold — gap 1 inside T_B (the
// 2CPM policy keeps spinning), gap 2 past the replacement window (it spins
// down and pays the cycle on the next arrival) — and records the run.
func demoRun(pc repro.PowerConfig, events, metrics string, doctor bool) error {
	sys := repro.DefaultSystemConfig()
	sys.NumDisks = 1
	sys.Power = pc
	sys.Policy = repro.TwoCompetitivePolicy(pc)
	loc := func(repro.BlockID) []repro.DiskID { return []repro.DiskID{0} }

	short := pc.Breakeven() / 2
	long := 2 * cfgWindow(pc)
	var reqs []repro.Request
	at := time.Duration(0)
	for i, gap := range []time.Duration{0, short, short, long, short, long, short} {
		at += gap
		reqs = append(reqs, repro.Request{ID: repro.RequestID(i), Block: 0, Arrival: at})
	}

	var opts []repro.RunOption
	var tracer *repro.Tracer
	var collector *repro.Collector
	var eventsBuf *bufio.Writer
	var eventsOut *os.File
	if events != "" {
		f, err := os.Create(events)
		if err != nil {
			return err
		}
		eventsOut = f
		eventsBuf = bufio.NewWriterSize(f, 1<<20)
		tracer = repro.NewTracer(0)
		tracer.SetSink(eventsBuf, strings.HasSuffix(events, ".bin"))
		opts = append(opts, repro.WithTracer(tracer))
	}
	if metrics != "" {
		collector = repro.NewCollector()
		opts = append(opts, repro.WithCollector(collector))
	}
	var suite *repro.Doctor
	if doctor {
		suite = repro.NewDoctor(repro.DoctorConfig{
			Power: sys.Power, Mech: sys.Mech, Policy: sys.Policy, Locations: loc,
		})
		opts = append(opts, repro.WithDoctor(suite))
	}

	res, runErr := repro.RunOnline(sys, loc, repro.NewStaticScheduler(loc), reqs, opts...)
	if runErr == nil {
		fmt.Printf("\ndemonstration run (1 disk, %d requests straddling T_B):\n", len(reqs))
		fmt.Printf("  energy %.1f J, %d spin-ups, %d spin-downs\n", res.Energy, res.SpinUps, res.SpinDowns)
	}

	// Flush telemetry even when the run failed, matching esched.
	if tracer != nil {
		ferr := tracer.Flush()
		if err := eventsBuf.Flush(); ferr == nil {
			ferr = err
		}
		if err := eventsOut.Close(); ferr == nil {
			ferr = err
		}
		if ferr != nil && runErr == nil {
			runErr = fmt.Errorf("event log %s: %w", events, ferr)
		}
		fmt.Fprintf(os.Stderr, "breakeven: event log flushed to %s\n", events)
	}
	if collector != nil {
		if metrics == "-" {
			if _, err := collector.WriteTo(os.Stdout); err != nil && runErr == nil {
				runErr = err
			}
		} else {
			f, err := os.Create(metrics)
			if err == nil {
				_, err = collector.WriteTo(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && runErr == nil {
				runErr = fmt.Errorf("metrics %s: %w", metrics, err)
			} else if err == nil {
				fmt.Fprintf(os.Stderr, "breakeven: metrics snapshot written to %s\n", metrics)
			}
		}
	}
	if suite != nil && runErr == nil {
		if _, err := suite.WriteReport(os.Stderr); err != nil {
			return err
		}
		if !suite.Passed() {
			runErr = fmt.Errorf("doctor: %d invariant violations", suite.Total())
		}
	}
	return runErr
}

// cfgWindow is the replacement window, floored at one second so degenerate
// what-if configurations still produce a finite demonstration.
func cfgWindow(pc repro.PowerConfig) time.Duration {
	if w := pc.ReplacementWindow(); w > time.Second {
		return w
	}
	return time.Second
}
