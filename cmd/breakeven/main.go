// Command breakeven prints the 2CPM power configuration (the paper's
// Figure 5) and the quantities derived from it: the breakeven idleness
// threshold T_B, the replacement window, and the per-request worst-case
// energy. Flags override individual parameters for what-if analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	cfg := repro.DefaultPowerConfig()
	var (
		idle    = flag.Float64("idle", cfg.IdlePower, "idle power P_I (W)")
		active  = flag.Float64("active", cfg.ActivePower, "active power (W)")
		standby = flag.Float64("standby", cfg.StandbyPower, "standby power (W)")
		eup     = flag.Float64("eup", cfg.SpinUpEnergy, "spin-up energy (J)")
		edown   = flag.Float64("edown", cfg.SpinDownEnergy, "spin-down energy (J)")
		tup     = flag.Duration("tup", cfg.SpinUpTime, "spin-up time")
		tdown   = flag.Duration("tdown", cfg.SpinDownTime, "spin-down time")
	)
	flag.Parse()

	cfg.IdlePower = *idle
	cfg.ActivePower = *active
	cfg.StandbyPower = *standby
	cfg.SpinUpEnergy = *eup
	cfg.SpinDownEnergy = *edown
	cfg.SpinUpTime = *tup
	cfg.SpinDownTime = *tdown
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "breakeven:", err)
		os.Exit(1)
	}

	if cfg == repro.DefaultPowerConfig() {
		fmt.Print(experiments.Figure5().Render())
	} else {
		fmt.Printf("idle %.1f W, active %.1f W, standby %.1f W\n", cfg.IdlePower, cfg.ActivePower, cfg.StandbyPower)
		fmt.Printf("spin-up %.0f J / %s, spin-down %.0f J / %s\n",
			cfg.SpinUpEnergy, cfg.SpinUpTime, cfg.SpinDownEnergy, cfg.SpinDownTime)
	}
	fmt.Printf("\nderived:\n")
	fmt.Printf("  breakeven time T_B           %s\n", cfg.Breakeven().Round(time.Millisecond))
	fmt.Printf("  replacement window T_B+T_up+T_down  %s\n", cfg.ReplacementWindow().Round(time.Millisecond))
	fmt.Printf("  max per-request energy       %.1f J\n", cfg.MaxRequestEnergy())
	fmt.Printf("  idle:standby power ratio     %.1fx\n", cfg.IdlePower/cfg.StandbyPower)
}
