// Command esched runs one energy-aware scheduling simulation and prints
// its metrics: energy (absolute and normalized to always-on), spin
// operations, and response-time statistics.
//
// Workloads are synthetic by default (-workload cello|financial) or loaded
// from a real trace file (-trace FILE -format spc|cellotext). Example:
//
//	esched -disks 180 -requests 70000 -rf 3 -scheduler wsc
//	esched -trace Financial1.spc -format spc -scheduler heuristic
//
// Observability (see docs/OBSERVABILITY.md): -events FILE streams the
// structured event log (JSONL, or the binary format when FILE ends in
// .bin), -metrics FILE dumps a Prometheus text snapshot at exit ("-" for
// stdout), and the standard profiling flags -cpuprofile, -memprofile,
// -tracefile and -pprof are available. -grid PROFILE prices the run's
// energy in gCO2e and dollars (with -cost MODEL selecting the tariff);
// the printed totals are byte-identical to a `tracelens carbon` replay of
// the -events log. On error, whatever events and metrics were collected
// are still flushed before exiting non-zero.
package main

import (
	"bufio"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "esched:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		disks     = flag.Int("disks", 180, "number of disks")
		requests  = flag.Int("requests", 70000, "number of requests (synthetic workloads)")
		blocks    = flag.Int("blocks", 30000, "number of blocks (synthetic workloads)")
		rf        = flag.Int("rf", 3, "data replication factor")
		zipf      = flag.Float64("z", 1, "data locality Zipf exponent (0 = uniform)")
		seed      = flag.Int64("seed", 1, "random seed")
		schedName = flag.String("scheduler", "heuristic", "random | static | heuristic | wsc | mwis | always-on")
		alpha     = flag.Float64("alpha", 0.2, "cost-function energy/performance mix")
		beta      = flag.Float64("beta", 10, "cost-function unit scale")
		interval  = flag.Duration("interval", 100*time.Millisecond, "batch scheduling interval (wsc)")
		workload  = flag.String("workload", "cello", "synthetic workload: cello | financial")
		traceFile = flag.String("trace", "", "real trace file (overrides -workload)")
		format    = flag.String("format", "spc", "trace format: spc | cellotext")
		compare   = flag.Bool("compare", false, "run every scheduler and print a comparison table")
		stateLog  = flag.String("statelog", "", "write per-disk state transitions as CSV to this file")
		events    = flag.String("events", "", "stream the structured event log to this file (JSONL; .bin = binary)")
		metrics   = flag.String("metrics", "", `write a Prometheus text metrics snapshot at exit ("-" = stdout)`)
		doctor    = flag.Bool("doctor", false, "run live invariant monitors over the run; non-zero exit on any violation")
		grid      = flag.String("grid", "", "price the run's energy under this carbon grid profile: flat | diurnal | coal | profile.json")
		costName  = flag.String("cost", "default", "cost model for -grid: default | model.json")
		flightDir = flag.String("flight", "", "flight-recorder dump directory: ring of recent events, dumped on doctor violations (off when empty)")
	)
	var prof repro.Profiles
	prof.RegisterFlagsTraceName(flag.CommandLine, "tracefile")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "esched: profiles:", err)
		}
	}()

	reqs, err := loadRequests(*traceFile, *format, *workload, *requests, *blocks, *seed)
	if err != nil {
		return err
	}
	nblocks := *blocks
	if mb := int(maxBlock(reqs)) + 1; mb > nblocks {
		nblocks = mb // traces may reference more blocks than -blocks
	}
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks: *disks, NumBlocks: nblocks,
		ReplicationFactor: *rf, ZipfExponent: *zipf, Seed: *seed,
	})
	if err != nil {
		return err
	}

	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = *disks
	cost := repro.CostConfig{Alpha: *alpha, Beta: *beta, Power: cfg.Power}
	if err := cost.Validate(); err != nil {
		return err
	}

	var runOpts []repro.RunOption
	if *stateLog != "" {
		f, err := os.Create(*stateLog)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		fmt.Fprintln(bw, "seconds,disk,from,to")
		runOpts = append(runOpts, repro.WithStateLog(bw))
	}

	// Observability: stream events while the run executes, snapshot metrics
	// at exit. Both survive a failed run — see the flush below.
	var tracer *repro.Tracer
	var collector *repro.Collector
	var eventsBuf *bufio.Writer
	var eventsOut *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		eventsOut = f
		eventsBuf = bufio.NewWriterSize(f, 1<<20)
		tracer = repro.NewTracer(0)
		tracer.SetSink(eventsBuf, strings.HasSuffix(*events, ".bin"))
		runOpts = append(runOpts, repro.WithTracer(tracer))
	}
	if *metrics != "" {
		collector = repro.NewCollector()
		runOpts = append(runOpts, repro.WithCollector(collector))
	}

	// Carbon & cost accounting: integrate the event stream against a grid
	// profile so the printed totals are byte-identical to a `tracelens
	// carbon` replay of the -events log.
	var acct *repro.CarbonAccountant
	if *grid != "" {
		switch {
		case *compare:
			return fmt.Errorf("-grid does not apply to -compare (run one scheduler at a time)")
		case *schedName == "mwis":
			return fmt.Errorf("-grid does not apply to the offline analytic MWIS model (no event stream)")
		}
		g, err := repro.ResolveGridProfile(*grid)
		if err != nil {
			return err
		}
		cm, err := repro.ResolveCostModel(*costName)
		if err != nil {
			return err
		}
		if acct, err = repro.NewCarbonAccountant(cfg, g, cm); err != nil {
			return err
		}
		acct.Bind(collector) // no-op without -metrics
		runOpts = append(runOpts, repro.WithAccounting(acct))
	}

	// The always-on baseline swaps the power policy; decide it before the
	// doctor snapshots the policy for its threshold monitor.
	if *schedName == "always-on" && !*compare {
		cfg.Policy = repro.AlwaysOnPolicy()
		cfg.InitialState = repro.StateIdle
	}
	var suite *repro.Doctor
	if *doctor {
		switch {
		case *compare:
			return fmt.Errorf("-doctor does not apply to -compare (run one scheduler at a time)")
		case *schedName == "mwis":
			return fmt.Errorf("-doctor does not apply to the offline analytic MWIS model (no event stream)")
		}
		if tracer == nil {
			// No -events log requested: still trace so scheduler decisions
			// reach the monitors (the ring itself stays minimal).
			tracer = repro.NewTracer(1)
			runOpts = append(runOpts, repro.WithTracer(tracer))
		}
		suite = repro.NewDoctor(repro.DoctorConfig{
			Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: plc.Locations,
		})
		runOpts = append(runOpts, repro.WithDoctor(suite))
	}

	// Flight recorder: an always-on ring of the most recent events. On a
	// batch run its trigger is the doctor (each violation freezes the
	// window into a replayable dump under -flight); inspect dumps with
	// `tracelens last DIR`.
	var rec *repro.FlightRecorder
	if *flightDir != "" {
		switch {
		case *compare:
			return fmt.Errorf("-flight does not apply to -compare (run one scheduler at a time)")
		case *schedName == "mwis":
			return fmt.Errorf("-flight does not apply to the offline analytic MWIS model (no event stream)")
		}
		rec = repro.NewFlightRecorder(repro.FlightConfig{Dir: *flightDir, Pprof: true})
		runOpts = append(runOpts, repro.WithFlight(rec))
	}

	ws := repro.AnalyzeWorkload(reqs)
	fmt.Printf("workload: %d requests, %d unique blocks, %s span, inter-arrival CoV %.1f\n",
		ws.Count, ws.UniqueBlocks, ws.Duration.Round(time.Second), ws.CoV)

	runErr := func() error {
		if *compare {
			return runComparison(cfg, plc, cost, reqs, *interval, *seed)
		}

		switch *schedName {
		case "mwis":
			_, st, err := repro.SolveOffline(reqs, plc.Locations, cfg.Power, repro.OfflineOptions{
				MaxSuccessors: 4, MaxNodes: 5_000_000,
			})
			if err != nil {
				return err
			}
			fmt.Printf("scheduler: energy-aware MWIS (offline analytic model)\n")
			fmt.Printf("energy: %.0f J using %d disks, %d spin-ups / %d spin-downs\n",
				st.Energy, st.DisksUsed, st.SpinUps, st.SpinDowns)
			fmt.Printf("energy saving vs per-request worst case: %.0f J\n", st.Saving)
			return nil
		case "always-on":
			res, err := repro.RunOnline(cfg, plc.Locations, repro.NewStaticScheduler(plc.Locations), reqs, runOpts...)
			if err != nil {
				return err
			}
			report(res)
			return nil
		case "wsc":
			res, err := repro.RunBatch(cfg, plc.Locations,
				repro.NewTracedWSCScheduler(plc.Locations, cost, tracer), reqs, *interval, runOpts...)
			if err != nil {
				return err
			}
			report(res)
			return nil
		}

		var s repro.OnlineScheduler
		switch *schedName {
		case "random":
			s = repro.NewRandomScheduler(plc.Locations, *seed+1)
		case "static":
			s = repro.NewStaticScheduler(plc.Locations)
		case "heuristic":
			s = repro.NewTracedHeuristicScheduler(plc.Locations, cost, tracer)
		default:
			return fmt.Errorf("unknown scheduler %q", *schedName)
		}
		res, err := repro.RunOnline(cfg, plc.Locations, s, reqs, runOpts...)
		if err != nil {
			return err
		}
		report(res)
		return nil
	}()

	if acct != nil && runErr == nil {
		rep := acct.Finalize()
		fmt.Println(rep.CarbonLine())
		fmt.Println(rep.CostLine())
	}

	// Flush whatever observability data was collected — also on the error
	// path, so a failed run never discards its partial telemetry — and log
	// where each artifact went.
	if eventsBuf != nil {
		ferr := tracer.Flush()
		if err := eventsBuf.Flush(); ferr == nil {
			ferr = err
		}
		if err := eventsOut.Close(); ferr == nil {
			ferr = err
		}
		if ferr != nil && runErr == nil {
			runErr = fmt.Errorf("event log %s: %w", *events, ferr)
		}
		fmt.Fprintf(os.Stderr, "esched: event log flushed to %s\n", *events)
	}
	if collector != nil {
		if err := writeMetrics(collector, *metrics); err != nil && runErr == nil {
			runErr = err
		}
	}
	if rec != nil {
		// Flush a trigger raised after the last observed event, then surface
		// any dump-write failure (the observer chain cannot).
		if _, err := rec.MaybeDump(); err != nil && runErr == nil {
			runErr = err
		}
		if n := rec.Dumps(); n > 0 {
			fmt.Fprintf(os.Stderr, "esched: flight recorder wrote %d dump(s) under %s\n", n, *flightDir)
		}
		if err := rec.Err(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if suite != nil && runErr == nil {
		if _, err := suite.WriteReport(os.Stderr); err != nil {
			return err
		}
		if !suite.Passed() {
			runErr = fmt.Errorf("doctor: %d invariant violations", suite.Total())
		}
	}
	return runErr
}

// writeMetrics dumps a Prometheus text snapshot to path ("-" = stdout) and
// logs the destination.
func writeMetrics(c *repro.Collector, path string) error {
	if path == "-" {
		_, err := c.WriteTo(os.Stdout)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := c.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("metrics %s: %w", path, werr)
	}
	fmt.Fprintf(os.Stderr, "esched: metrics snapshot written to %s\n", path)
	return nil
}

func loadRequests(traceFile, format, workload string, n, blocks int, seed int64) ([]repro.Request, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var r io.Reader = f
		if strings.HasSuffix(traceFile, ".gz") {
			gz, err := gzip.NewReader(f)
			if err != nil {
				return nil, fmt.Errorf("gunzip %s: %w", traceFile, err)
			}
			defer gz.Close()
			r = gz
		}
		var tf repro.TraceFormat
		switch format {
		case "spc":
			tf = repro.FormatSPC
		case "cellotext":
			tf = repro.FormatCelloText
		default:
			return nil, fmt.Errorf("unknown trace format %q", format)
		}
		reqs, _, err := repro.LoadTrace(r, tf, n)
		return reqs, err
	}
	switch workload {
	case "cello":
		return repro.CelloLike(n, blocks, seed), nil
	case "financial":
		return repro.FinancialLike(n, blocks, seed), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}

func maxBlock(reqs []repro.Request) repro.BlockID {
	var m repro.BlockID
	for _, r := range reqs {
		if r.Block > m {
			m = r.Block
		}
	}
	return m
}

func report(res *repro.Result) {
	fmt.Printf("scheduler: %s\n", res.Scheduler)
	fmt.Printf("energy: %.0f J (%.3f of always-on %.0f J) over %s\n",
		res.Energy, res.NormalizedEnergy(), res.AlwaysOnEnergy, res.Horizon.Round(time.Second))
	fmt.Printf("spin operations: %d up / %d down\n", res.SpinUps, res.SpinDowns)
	fmt.Printf("requests: %d served, %d dropped\n", res.Served, res.Dropped)
	fmt.Printf("response time: mean %s, p90 %s, p99 %s, max %s\n",
		res.Response.Mean().Round(time.Millisecond),
		res.Response.Percentile(90).Round(time.Millisecond),
		res.Response.Percentile(99).Round(time.Millisecond),
		res.Response.Max().Round(time.Millisecond))
}

// runComparison runs every scheduler against the same workload and prints
// one row per algorithm.
func runComparison(cfg repro.SystemConfig, plc *repro.Placement, cost repro.CostConfig, reqs []repro.Request, interval time.Duration, seed int64) error {
	fmt.Printf("\n%-26s %-12s %-10s %-14s %-10s\n", "scheduler", "norm energy", "spin-ups", "mean response", "p90")
	row := func(name string, norm float64, spins int, mean, p90 time.Duration) {
		fmt.Printf("%-26s %-12.3f %-10d %-14v %-10v\n", name, norm, spins,
			mean.Round(time.Millisecond), p90.Round(time.Millisecond))
	}
	type runner struct {
		name string
		run  func() (*repro.Result, error)
	}
	runners := []runner{
		{"random", func() (*repro.Result, error) {
			return repro.RunOnline(cfg, plc.Locations, repro.NewRandomScheduler(plc.Locations, seed+1), reqs)
		}},
		{"static", func() (*repro.Result, error) {
			return repro.RunOnline(cfg, plc.Locations, repro.NewStaticScheduler(plc.Locations), reqs)
		}},
		{"heuristic", func() (*repro.Result, error) {
			return repro.RunOnline(cfg, plc.Locations, repro.NewHeuristicScheduler(plc.Locations, cost), reqs)
		}},
		{"predictive", func() (*repro.Result, error) {
			p, err := repro.NewPredictiveScheduler(plc.Locations, cost, 0.5, cfg.Power.Breakeven())
			if err != nil {
				return nil, err
			}
			return repro.RunOnline(cfg, plc.Locations, p, reqs)
		}},
		{"wsc (batch)", func() (*repro.Result, error) {
			return repro.RunBatch(cfg, plc.Locations, repro.NewWSCScheduler(plc.Locations, cost), reqs, interval)
		}},
	}
	for _, r := range runners {
		res, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		row(r.name, res.NormalizedEnergy(), res.SpinUps,
			res.Response.Mean(), res.Response.Percentile(90))
	}
	// Offline MWIS, analytic model.
	_, st, err := repro.SolveOffline(reqs, plc.Locations, cfg.Power, repro.OfflineOptions{
		MaxSuccessors: 4, MaxNodes: 5_000_000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %-12s %-10d %-14s %-10s  (offline analytic: %.0f J)\n",
		"mwis (offline)", "-", st.SpinUps, "-", "-", st.Energy)
	return nil
}
