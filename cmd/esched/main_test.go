package main

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestLoadRequestsSynthetic(t *testing.T) {
	t.Parallel()
	reqs, err := loadRequests("", "spc", "cello", 100, 50, 1)
	if err != nil || len(reqs) != 100 {
		t.Fatalf("cello: %d reqs, err %v", len(reqs), err)
	}
	reqs, err = loadRequests("", "spc", "financial", 100, 50, 1)
	if err != nil || len(reqs) != 100 {
		t.Fatalf("financial: %d reqs, err %v", len(reqs), err)
	}
	if _, err := loadRequests("", "spc", "nope", 10, 5, 1); err == nil {
		t.Error("accepted unknown workload")
	}
}

func TestLoadRequestsFromFileAndGzip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	reqs := repro.FinancialLike(200, 100, 3)

	plain := filepath.Join(dir, "t.spc")
	f, err := os.Create(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteTrace(f, repro.FormatSPC, reqs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadRequests(plain, "spc", "", 0, 0, 0)
	if err != nil || len(got) != 200 {
		t.Fatalf("plain: %d reqs, err %v", len(got), err)
	}

	zipped := filepath.Join(dir, "t.spc.gz")
	zf, err := os.Create(zipped)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(zf)
	if err := repro.WriteTrace(gz, repro.FormatSPC, reqs); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	zf.Close()
	got, err = loadRequests(zipped, "spc", "", 0, 0, 0)
	if err != nil || len(got) != 200 {
		t.Fatalf("gzip: %d reqs, err %v", len(got), err)
	}

	if _, err := loadRequests(plain, "nope", "", 0, 0, 0); err == nil {
		t.Error("accepted unknown format")
	}
	if _, err := loadRequests(filepath.Join(dir, "missing"), "spc", "", 0, 0, 0); err == nil {
		t.Error("accepted missing file")
	}
}

func TestMaxBlock(t *testing.T) {
	t.Parallel()
	reqs := []repro.Request{{Block: 3}, {Block: 17}, {Block: 5}}
	if got := maxBlock(reqs); got != 17 {
		t.Errorf("maxBlock = %v", got)
	}
	if got := maxBlock(nil); got != 0 {
		t.Errorf("maxBlock(nil) = %v", got)
	}
}
