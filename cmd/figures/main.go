// Command figures regenerates the paper's evaluation figures as text
// tables (see EXPERIMENTS.md for the recorded full-scale output).
//
//	figures                     # all figures at small scale (fast)
//	figures -scale full         # the paper's 180-disk / 70k-request setup
//	figures -fig 6,7,8          # a subset
//	figures -tsv -out results/  # write TSV files instead of stdout tables
//	figures -fleet              # 100k-disk fleet throughput benchmark
//	figures -shards 8           # run simulated cells on the sharded kernel
//
// The standard profiling flags -cpuprofile, -memprofile, -trace and -pprof
// are available for profiling full-scale regenerations, and -telemetry
// ADDR serves live per-cell sweep progress over HTTP while a regeneration
// runs (see docs/OBSERVABILITY.md), and -doctor runs every simulated cell
// under live invariant monitoring, failing the regeneration on any
// violation; -flight DIR additionally arms a per-cell flight recorder, so
// a violation leaves a replayable dump of the cell's recent events under
// DIR (inspect with `tracelens last`). A failing run still writes the
// partial -summary accumulated
// before the error and logs where it went. -cache DIR persists
// replication-sweep results on disk, content-addressed by every input, so
// unchanged repeat runs skip the simulation entirely (doctored runs always
// simulate fresh).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/account"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "small", "small | full")
		figList   = flag.String("fig", "all", "comma-separated figure numbers (2-17) or 'all'")
		ext       = flag.Bool("ext", false, "also run the extension experiments (off-loading, caching, rack-aware placement, prediction, DPM policies, queue disciplines)")
		tsv       = flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
		summary   = flag.String("summary", "", "write a Markdown summary report to this file (runs both trace sweeps)")
		outDir    = flag.String("out", "", "write each figure to DIR/figNN.{txt,tsv} instead of stdout")
		telemetry = flag.String("telemetry", "", `serve live sweep telemetry on this address (e.g. "localhost:8090": /healthz, /metrics, /progress)`)
		doctor    = flag.Bool("doctor", false, "run live invariant monitors over every simulated cell; non-zero exit on any violation (doctored cells always bypass the sweep cache)")
		cacheDir  = flag.String("cache", "", "persist replication-sweep results in this directory, keyed by a content hash of every input; repeat runs with unchanged inputs reuse them")
		fleet     = flag.Bool("fleet", false, "run the 100k-disk fleet throughput benchmark (sharded kernel, hundreds of millions of events) instead of figures")
		shards    = flag.Int("shards", 0, "kernel shard count (0 or 1 = serial engine); with -fleet, sub-kernels over the fleet's racks (0 = one per rack)")
		kstats    = flag.String("kernelstats", "", "with -fleet: arm per-shard kernel timing and write the telemetry snapshot to this JSON file (inspect with `tracelens shards FILE`)")
		flightDir = flag.String("flight", "", "with -doctor: arm a flight recorder on every monitored cell; a doctor violation freezes the cell's recent events into a replayable dump under this directory (inspect with `tracelens last`)")
		grid      = flag.String("grid", "", "also emit carbon & what-if tables under this grid profile: flat | diurnal | coal | profile.json")
		costName  = flag.String("cost", "default", "cost model for -grid: default | model.json")
	)
	var prof obs.Profiles
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "figures: profiles:", err)
		}
	}()

	if *fleet {
		if *flightDir != "" {
			return fmt.Errorf("-flight applies to figure regenerations, not -fleet (fleet runs are untraced)")
		}
		return runFleet(*shards, *kstats)
	}
	if *kstats != "" {
		return fmt.Errorf("-kernelstats applies to the -fleet benchmark only")
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Doctor = *doctor
	scale.Shards = *shards
	if *flightDir != "" {
		if !*doctor {
			return fmt.Errorf("-flight requires -doctor: without the monitors no trigger can fire")
		}
		scale.FlightDir = *flightDir
	}

	if *cacheDir != "" {
		if err := experiments.DefaultSweepCache().SetDir(*cacheDir); err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "figures: sweep cache %s\n", experiments.DefaultSweepCache().Stats())
		}()
	}

	if *telemetry != "" {
		mon := experiments.NewMonitor()
		addr, shutdown, err := mon.Serve(*telemetry)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer shutdown()
		scale.Monitor = mon
		fmt.Fprintf(os.Stderr, "figures: telemetry on http://%s (/healthz /metrics /progress)\n", addr)
	}

	want := map[string]bool{}
	if *figList != "all" {
		for _, f := range strings.Split(*figList, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	selected := func(n string) bool { return *figList == "all" || want[n] }

	emit := func(n string, t *experiments.Table) error {
		content := t.Render()
		ext := "txt"
		if *tsv {
			content = t.TSV()
			ext = "tsv"
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("fig%s.%s", n, ext))
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
			return nil
		}
		fmt.Println(content)
		return nil
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	start := time.Now()
	// Worked examples and configuration (independent of scale).
	if selected("2") {
		if err := emit("2", experiments.Figure2()); err != nil {
			return err
		}
	}
	if selected("3") {
		if err := emit("3", experiments.Figure3()); err != nil {
			return err
		}
	}
	if selected("4") {
		if err := emit("4", experiments.Figure4()); err != nil {
			return err
		}
	}
	if selected("5") {
		if err := emit("5", experiments.Figure5()); err != nil {
			return err
		}
	}

	// Cello replication sweep: Figures 6, 7, 8, 13.
	if selected("6") || selected("7") || selected("8") || selected("13") {
		sw, err := experiments.SweepReplication(scale, experiments.Cello)
		if err != nil {
			return err
		}
		for _, f := range []struct {
			n string
			t *experiments.Table
		}{
			{"6", sw.Figure6()}, {"7", sw.Figure7()}, {"8", sw.Figure8()}, {"13", sw.Figure13()},
		} {
			if selected(f.n) {
				if err := emit(f.n, f.t); err != nil {
					return err
				}
			}
		}
	}
	if selected("9") {
		t, err := experiments.Figure9(scale, experiments.Cello)
		if err != nil {
			return err
		}
		if err := emit("9", t); err != nil {
			return err
		}
	}
	if selected("10") {
		t, err := experiments.Figure10(scale, experiments.Cello)
		if err != nil {
			return err
		}
		if err := emit("10", t); err != nil {
			return err
		}
	}
	if selected("11") {
		t, err := experiments.Figure11(scale, experiments.Cello)
		if err != nil {
			return err
		}
		if err := emit("11", t); err != nil {
			return err
		}
	}
	if selected("12") {
		t, err := experiments.Figure12(scale, experiments.Cello)
		if err != nil {
			return err
		}
		if err := emit("12", t); err != nil {
			return err
		}
	}

	// Financial1 sweep: Figures 14, 15, 16.
	if selected("14") || selected("15") || selected("16") {
		sw, err := experiments.SweepReplication(scale, experiments.Financial)
		if err != nil {
			return err
		}
		for _, f := range []struct {
			n string
			t *experiments.Table
		}{
			{"14", sw.Figure6()}, {"15", sw.Figure7()}, {"16", sw.Figure8()},
		} {
			if selected(f.n) {
				if err := emit(f.n, f.t); err != nil {
					return err
				}
			}
		}
	}
	if selected("17") {
		t, err := experiments.Figure9(scale, experiments.Financial)
		if err != nil {
			return err
		}
		if err := emit("17", t); err != nil {
			return err
		}
	}

	// Carbon & consolidation what-if tables: re-pricings of the Cello sweep
	// already in the cache (or simulated once here), never extra cells.
	var gridProfile *account.GridProfile
	var costModel account.CostModel
	if *grid != "" {
		g, err := account.ResolveGrid(*grid)
		if err != nil {
			return err
		}
		cm, err := account.ResolveCost(*costName)
		if err != nil {
			return err
		}
		gridProfile, costModel = g, cm
		ct, err := experiments.CarbonTable(scale, experiments.Cello, g, cm)
		if err != nil {
			return err
		}
		if err := emit("-carbon", ct); err != nil {
			return err
		}
		wt, err := experiments.WhatIfTable(scale, experiments.Cello, g, cm)
		if err != nil {
			return err
		}
		if err := emit("-whatif", wt); err != nil {
			return err
		}
	}

	if *summary != "" {
		md, err := report.Generate(report.Options{
			Scale:      scale,
			Extensions: *ext,
			Generated:  time.Now().UTC(),
			Grid:       gridProfile,
			Cost:       costModel,
		})
		if err != nil {
			// Flush the partial report before exiting non-zero so completed
			// sweeps are not discarded with the failure.
			if md != "" {
				if werr := os.WriteFile(*summary, []byte(md), 0o644); werr == nil {
					fmt.Fprintf(os.Stderr, "figures: partial summary flushed to %s\n", *summary)
				}
			}
			return err
		}
		if err := os.WriteFile(*summary, []byte(md), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *summary)
	}

	if *ext {
		tables, err := experiments.Extensions(scale, experiments.Cello)
		if err != nil {
			return err
		}
		for i, t := range tables {
			if err := emit(fmt.Sprintf("-ext%d", i+1), t); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Second))
	return nil
}

// runFleet executes the headline scale point: a 100,000-disk fleet in 1000
// racks at fleet event density (~315 million kernel events), the same
// configuration BenchmarkFleet100k records in BENCH_*.json. One shard per
// rack keeps each sub-kernel's calendar queue and disk stripe
// cache-resident, and the GC stays off for the run (FleetConfig.RelaxGC).
func runFleet(shards int, kstats string) error {
	cfg := storage.DefaultFleetConfig()
	cfg.NumDisks = 100_000
	cfg.NumRacks = 1_000
	cfg.RequestsPerDisk = 1_400
	cfg.BurstLen = 800
	cfg.InterArrival = 25 * time.Microsecond
	cfg.Seed = 42
	cfg.RelaxGC = true
	cfg.Shards = shards
	cfg.Telemetry = kstats != ""
	if shards == 0 {
		cfg.Shards = cfg.NumRacks
	}
	fmt.Fprintf(os.Stderr, "figures: fleet %d disks / %d racks / %d shards, %d requests\n",
		cfg.NumDisks, cfg.NumRacks, cfg.Shards, cfg.NumDisks*cfg.RequestsPerDisk)
	res, err := storage.RunFleet(cfg)
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:  "Fleet throughput (100k disks, sharded kernel)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("disks", fmt.Sprintf("%d", res.NumDisks))
	t.AddRow("shards", fmt.Sprintf("%d", res.Shards))
	t.AddRow("events", fmt.Sprintf("%d", res.Events))
	t.AddRow("events/sec", fmt.Sprintf("%.0f", res.EventsPerSec))
	t.AddRow("wall", res.Wall.Round(time.Millisecond).String())
	t.AddRow("virtual horizon", res.Horizon.Round(time.Millisecond).String())
	t.AddRow("served", fmt.Sprintf("%d", res.Served))
	t.AddRow("energy (J)", fmt.Sprintf("%.0f", res.Energy))
	t.AddRow("normalized energy", fmt.Sprintf("%.3f", res.Energy/res.AlwaysOnEnergy))
	t.AddRow("spin-ups", fmt.Sprintf("%d", res.SpinUps))
	t.AddRow("mean response", res.MeanResponse.Round(time.Microsecond).String())
	t.AddRow("p50 / p90 / p99", fmt.Sprintf("%s / %s / %s",
		res.P50.Round(time.Microsecond), res.P90.Round(time.Microsecond), res.P99.Round(time.Microsecond)))
	fmt.Println(t.Render())
	if kstats != "" {
		data, err := json.MarshalIndent(res.Kernel, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(kstats, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "figures: kernel telemetry written to %s (tracelens shards %s)\n", kstats, kstats)
	}
	return nil
}
