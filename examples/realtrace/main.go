// Realtrace: round-trip a trace through the on-disk SPC format — write a
// synthetic Financial1-like trace, load it back exactly the way a real
// UMass trace would be (writes dropped, unique (device,LBA) pairs become
// blocks), and simulate it. Substitute the generated file with the real
// Financial1.spc to reproduce the paper on the true trace.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "repro-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "financial-like.spc")

	// Write a synthetic OLTP trace in SPC format.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteTrace(f, repro.FormatSPC, repro.FinancialLike(10000, 4000, 5)); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)

	// Load it back as the scheduler input.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	reqs, blocks, err := repro.LoadTrace(in, repro.FormatSPC, 0)
	if err != nil {
		log.Fatal(err)
	}
	ws := repro.AnalyzeWorkload(reqs)
	fmt.Printf("loaded %d read requests over %d blocks, %s span\n",
		len(reqs), blocks, ws.Duration.Round(time.Second))

	// Place the trace's blocks with 3 replicas and compare schedulers.
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks: 48, NumBlocks: blocks, ReplicationFactor: 3, ZipfExponent: 1, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = 48

	static, err := repro.RunOnline(cfg, plc.Locations, repro.NewStaticScheduler(plc.Locations), reqs)
	if err != nil {
		log.Fatal(err)
	}
	wsc, err := repro.RunBatch(cfg, plc.Locations,
		repro.NewWSCScheduler(plc.Locations, repro.DefaultCost(cfg.Power)), reqs, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range []*repro.Result{static, wsc} {
		fmt.Printf("%-18s energy %.3f of always-on, mean response %v\n",
			res.Scheduler, res.NormalizedEnergy(), res.Response.Mean().Round(time.Millisecond))
	}
}
