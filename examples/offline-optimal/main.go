// Offline-optimal: the paper's Section 2.3 worked example end-to-end — the
// toy four-disk system, schedules A/B/C with their energies, and the exact
// MWIS solver recovering the optimal offline schedule (Figures 2-4).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Placement from Figure 2: d1={b1,b2,b3,b5}, d2={b2,b3}, d3={b4,b6},
	// d4={b3,b4,b5,b6} (0-indexed below).
	plc, err := repro.NewPlacement(4, [][]repro.DiskID{
		{0},
		{0, 1},
		{0, 1, 3},
		{2, 3},
		{0, 3},
		{2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	times := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second, 12 * time.Second, 13 * time.Second}
	reqs := make([]repro.Request, 6)
	for i := range reqs {
		reqs[i] = repro.Request{ID: repro.RequestID(i), Block: repro.BlockID(i), Arrival: times[i]}
	}
	toy := repro.ToyPowerConfig()

	show := func(name string, s repro.Schedule) {
		st, err := repro.EvaluateSchedule(reqs, s, toy, plc.Locations)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s energy %4.0f  disks %d  spin-ups %d\n", name, st.Energy, st.DisksUsed, st.SpinUps)
	}

	fmt.Println("offline model, toy power (P_I=1, T_B=5s, free transitions):")
	show("schedule B (Fig 3a)", repro.Schedule{0, 0, 0, 2, 0, 2})
	show("schedule C (Fig 3b)", repro.Schedule{0, 0, 0, 2, 3, 3})

	optimal, st, err := repro.SolveOfflineExact(reqs, plc.Locations, toy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact MWIS pipeline finds energy %.0f with assignment:\n", st.Energy)
	for i, d := range optimal {
		fmt.Printf("  r%d -> d%d\n", i+1, d+1)
	}

	greedy, gst, err := repro.SolveOffline(reqs, plc.Locations, toy, repro.OfflineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	_ = greedy
	fmt.Printf("\ngreedy GWMIN + local search reaches energy %.0f (optimum is %.0f)\n", gst.Energy, st.Energy)
}
