// Fullstack: stack every energy-saving layer this library provides on a
// mixed read/write workload — the energy-aware heuristic scheduler, write
// off-loading (Section 2.1's assumed mechanism) and a power-aware block
// cache (related work [26,27]) — and show how the savings compose.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		disks  = 48
		blocks = 8000
	)
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks: disks, NumBlocks: blocks, ReplicationFactor: 3, ZipfExponent: 1, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	// 20,000 requests, 30% writes.
	reqs := repro.WithWrites(repro.CelloLike(20000, blocks, 21), 0.3, 21)

	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = disks
	cost := repro.DefaultCost(cfg.Power)

	type row struct {
		name string
		res  *repro.Result
	}
	var rows []row

	// Layer 0: static routing, no tricks.
	static, err := repro.RunOnline(cfg, plc.Locations, repro.NewStaticScheduler(plc.Locations), reqs)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"static", static})

	// Layer 1: energy-aware scheduling over existing replicas.
	heur, err := repro.RunOnline(cfg, plc.Locations,
		repro.NewHeuristicScheduler(plc.Locations, cost), reqs)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"+ energy-aware scheduling", heur})

	// Layer 2: write off-loading keeps writes from waking sleeping disks.
	m, err := repro.NewOffloadManager(plc.Locations, disks)
	if err != nil {
		log.Fatal(err)
	}
	offloaded, err := repro.RunOnline(cfg, m.Locations,
		repro.NewOffloadScheduler(m, repro.NewHeuristicScheduler(m.Locations, cost)), reqs)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"+ write off-loading", offloaded})

	// Layer 3: a power-aware cache absorbs hot reads entirely.
	m2, err := repro.NewOffloadManager(plc.Locations, disks)
	if err != nil {
		log.Fatal(err)
	}
	c, err := repro.NewCache(blocks/20, repro.CachePowerAware, m2.Locations)
	if err != nil {
		log.Fatal(err)
	}
	cached, err := repro.RunOnline(cfg, m2.Locations,
		repro.NewOffloadScheduler(m2, repro.NewHeuristicScheduler(m2.Locations, cost)), reqs,
		repro.WithCache(c))
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"+ power-aware cache", cached})

	fmt.Printf("%-28s %-12s %-10s %-14s\n", "configuration", "norm energy", "spin-ups", "mean response")
	for _, r := range rows {
		fmt.Printf("%-28s %-12.3f %-10d %-14v\n",
			r.name, r.res.NormalizedEnergy(), r.res.SpinUps,
			r.res.Response.Mean().Round(time.Millisecond))
	}
	fmt.Printf("\noff-loading: %+v\n", m2.Stats())
	fmt.Printf("cache: hit rate %.2f, %d standby evictions\n",
		c.Stats().HitRate(), c.Stats().StandbyEvictions)
	fmt.Printf("total energy cut vs static: %.1f%%\n",
		100*(1-cached.Energy/static.Energy))
}
