// Failures: inject disk outages into a running system and watch
// replication absorb them — requests on failing disks are re-dispatched to
// surviving replicas, availability only drops when every copy is down.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		disks  = 24
		blocks = 3000
	)
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks: disks, NumBlocks: blocks, ReplicationFactor: 3, ZipfExponent: 1, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	reqs := repro.CelloLike(10000, blocks, 13)
	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = disks
	h := repro.NewHeuristicScheduler(plc.Locations, repro.DefaultCost(cfg.Power))

	fmt.Printf("%-28s %-8s %-12s %-14s %-12s\n",
		"scenario", "served", "unavailable", "re-dispatched", "norm energy")
	show := func(name string, res *repro.Result) {
		fmt.Printf("%-28s %-8d %-12d %-14d %-12.3f\n",
			name, res.Served, res.Unavailable, res.Redispatched, res.NormalizedEnergy())
	}

	healthy, err := repro.RunOnline(cfg, plc.Locations, h, reqs)
	if err != nil {
		log.Fatal(err)
	}
	show("no failures", healthy)

	// One disk dies 5 minutes in and comes back 20 minutes later.
	oneDown, err := repro.RunOnline(cfg, plc.Locations, h, reqs, repro.WithFailures(
		repro.FailureEvent{Disk: 2, At: 5 * time.Minute, Duration: 20 * time.Minute},
	))
	if err != nil {
		log.Fatal(err)
	}
	show("1 disk out for 20m", oneDown)

	// A quarter of the array is down for the whole run: with rf=3 almost
	// every block still has a live replica.
	var events []repro.FailureEvent
	for d := 0; d < disks/4; d++ {
		events = append(events, repro.FailureEvent{
			Disk: repro.DiskID(d * 4), At: time.Second, Duration: 24 * time.Hour,
		})
	}
	quarterDown, err := repro.RunOnline(cfg, plc.Locations, h, reqs, repro.WithFailures(events...))
	if err != nil {
		log.Fatal(err)
	}
	show("25% of disks out", quarterDown)
}
