// Quickstart: build a replicated storage system, run the energy-aware
// online scheduler against the static baseline, and print the savings.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A 48-disk system storing 8,000 blocks with 3 replicas each; block
	// popularity and original locations are Zipf-skewed as in real systems.
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks:          48,
		NumBlocks:         8000,
		ReplicationFactor: 3,
		ZipfExponent:      1,
		Seed:              42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A bursty trace of 20,000 read requests (Cello-like, Section 4.1).
	reqs := repro.CelloLike(20000, 8000, 42)
	ws := repro.AnalyzeWorkload(reqs)
	fmt.Printf("workload: %d requests over %s (inter-arrival CoV %.1f)\n\n",
		ws.Count, ws.Duration.Round(time.Second), ws.CoV)

	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = 48

	// Baseline: every request goes to its original location.
	static, err := repro.RunOnline(cfg, plc.Locations, repro.NewStaticScheduler(plc.Locations), reqs)
	if err != nil {
		log.Fatal(err)
	}

	// Energy-aware: requests go to the replica with the lowest composite
	// energy/performance cost (Eq. 6).
	heuristic, err := repro.RunOnline(cfg, plc.Locations,
		repro.NewHeuristicScheduler(plc.Locations, repro.DefaultCost(cfg.Power)), reqs)
	if err != nil {
		log.Fatal(err)
	}

	for _, res := range []*repro.Result{static, heuristic} {
		fmt.Printf("%-24s energy %8.0f J (%.3f of always-on)  spin-ups %4d  mean response %v\n",
			res.Scheduler, res.Energy, res.NormalizedEnergy(), res.SpinUps,
			res.Response.Mean().Round(time.Millisecond))
	}
	saving := 1 - heuristic.Energy/static.Energy
	fmt.Printf("\nenergy-aware scheduling saves %.1f%% over static routing, with no data movement\n", 100*saving)
}
