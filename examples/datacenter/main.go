// Datacenter: the paper's headline comparison (Section 5) on the full
// 180-disk system — all five schedulers at replication factor 3, reporting
// normalized energy, spin operations and response times.
//
// This is the rf=3 column of Figures 6-8. Expect a couple of minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	var (
		disks    = flag.Int("disks", 180, "number of disks")
		requests = flag.Int("requests", 70000, "number of requests")
		blocks   = flag.Int("blocks", 30000, "number of blocks")
		rf       = flag.Int("rf", 3, "replication factor")
	)
	flag.Parse()

	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks:          *disks,
		NumBlocks:         *blocks,
		ReplicationFactor: *rf,
		ZipfExponent:      1,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	reqs := repro.CelloLike(*requests, *blocks, 1)

	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = *disks
	cost := repro.DefaultCost(cfg.Power)

	fmt.Printf("%-24s %-12s %-10s %-14s %-10s\n", "scheduler", "norm energy", "spin-ups", "mean response", "p90")
	row := func(name string, norm float64, spinUps int, mean, p90 time.Duration) {
		fmt.Printf("%-24s %-12.3f %-10d %-14v %-10v\n", name, norm, spinUps,
			mean.Round(time.Millisecond), p90.Round(time.Millisecond))
	}

	run := func(name string, f func() (*repro.Result, error)) {
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		row(res.Scheduler, res.NormalizedEnergy(), res.SpinUps,
			res.Response.Mean(), res.Response.Percentile(90))
	}

	run("random", func() (*repro.Result, error) {
		return repro.RunOnline(cfg, plc.Locations, repro.NewRandomScheduler(plc.Locations, 3), reqs)
	})
	run("static", func() (*repro.Result, error) {
		return repro.RunOnline(cfg, plc.Locations, repro.NewStaticScheduler(plc.Locations), reqs)
	})
	run("heuristic", func() (*repro.Result, error) {
		return repro.RunOnline(cfg, plc.Locations, repro.NewHeuristicScheduler(plc.Locations, cost), reqs)
	})
	run("wsc", func() (*repro.Result, error) {
		return repro.RunBatch(cfg, plc.Locations, repro.NewWSCScheduler(plc.Locations, cost), reqs, 100*time.Millisecond)
	})

	// Offline MWIS: analytic model (no spin-up delays by assumption), so
	// only energy and spin counts are comparable.
	schedule, st, err := repro.SolveOffline(reqs, plc.Locations, cfg.Power, repro.OfflineOptions{
		MaxSuccessors: 4, MaxNodes: 5_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Replaying the precomputed schedule through the simulator shows what
	// the offline plan costs when spin-ups are reactive instead of
	// prescient.
	replay, err := repro.RunOnline(cfg, plc.Locations,
		repro.NewPrecomputedScheduler("energy-aware MWIS (replayed)", schedule), reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %-12s %-10d %-14s %-10s  (analytic offline model)\n",
		"energy-aware MWIS", fmt.Sprintf("%.3f*", st.Energy/replay.AlwaysOnEnergy), st.SpinUps, "-", "-")
	row(replay.Scheduler, replay.NormalizedEnergy(), replay.SpinUps,
		replay.Response.Mean(), replay.Response.Percentile(90))
	fmt.Println("\n* offline analytic energy excludes standby draw (paper's model); the replayed row includes it")
}
