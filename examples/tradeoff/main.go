// Tradeoff: sweep the cost function's alpha parameter (Eq. 6) to expose
// the energy/response-time tradeoff of Appendix A.2 — alpha=0 optimizes
// response only, alpha=1 energy only — and report the balance point.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	plc, err := repro.GeneratePlacement(repro.PlacementConfig{
		NumDisks: 48, NumBlocks: 8000, ReplicationFactor: 3, ZipfExponent: 1, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	reqs := repro.CelloLike(20000, 8000, 11)
	cfg := repro.DefaultSystemConfig()
	cfg.NumDisks = 48

	type point struct {
		alpha  float64
		energy float64
		mean   time.Duration
	}
	var pts []point
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		cost := repro.CostConfig{Alpha: alpha, Beta: 10, Power: cfg.Power}
		res, err := repro.RunOnline(cfg, plc.Locations,
			repro.NewHeuristicScheduler(plc.Locations, cost), reqs)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{alpha, res.NormalizedEnergy(), res.Response.Mean()})
	}

	fmt.Printf("%-8s %-14s %-16s\n", "alpha", "norm energy", "mean response")
	for _, p := range pts {
		fmt.Printf("%-8.1f %-14.3f %-16v\n", p.alpha, p.energy, p.mean.Round(time.Millisecond))
	}

	// Balance point: the alpha minimizing the product of normalized energy
	// and normalized response (both relative to their alpha=0 values).
	best, bestScore := pts[0], 1e18
	for _, p := range pts {
		score := (p.energy / pts[0].energy) * (float64(p.mean) / float64(pts[0].mean))
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	fmt.Printf("\nbalance point: alpha=%.1f (energy %.3f, response %v)\n",
		best.alpha, best.energy, best.mean.Round(time.Millisecond))
}
