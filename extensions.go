package repro

import (
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/diskmodel"
	"repro/internal/dpm"
	"repro/internal/gear"
	"repro/internal/offload"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/storage"
)

// This file exposes the subsystems built beyond the paper's core
// algorithms: write off-loading (Section 2.1's assumed mechanism),
// power-aware caching (related work [26,27]), rack-aware placement (the
// conclusion's HDFS target), prediction-discounted costs (Section 3.3),
// disk queue disciplines, and single-disk power-management analysis.

// Write off-loading.
type (
	// OffloadManager tracks off-loaded writes and their temporary holders.
	OffloadManager = offload.Manager
	// OffloadStats counts off-loading activity.
	OffloadStats = offload.Stats
)

// NewOffloadManager creates a write off-loading manager over the home
// placement. Build read schedulers over Manager.Locations so reads follow
// off-loaded blocks, and wrap them with NewOffloadScheduler.
func NewOffloadManager(home Locator, numDisks int) (*OffloadManager, error) {
	return offload.NewManager(home, numDisks)
}

// NewOffloadScheduler splits traffic: writes through the off-load manager,
// reads through the inner scheduler.
func NewOffloadScheduler(m *OffloadManager, reads OnlineScheduler) OnlineScheduler {
	return offload.Scheduler{Manager: m, Reads: reads}
}

// WithWrites marks a deterministic pseudo-random fraction of a request
// stream as writes.
func WithWrites(reqs []Request, fraction float64, seed int64) []Request {
	return offload.WithWrites(reqs, fraction, seed)
}

// Caching.
type (
	// Cache is a fixed-capacity block cache for the front of the system.
	Cache = cache.Cache
	// CachePolicy selects the eviction strategy.
	CachePolicy = cache.Policy
	// CacheStats counts cache activity.
	CacheStats = cache.Stats
)

// Cache eviction policies.
const (
	CacheLRU        = cache.LRU
	CachePowerAware = cache.PowerAware
)

// NewCache creates a block cache; pass it to RunOnline/RunBatch via
// WithCache.
func NewCache(capacity int, policy CachePolicy, loc Locator) (*Cache, error) {
	return cache.New(capacity, policy, loc)
}

// WithCache returns a run option placing the cache in front of the
// scheduler.
func WithCache(c *Cache) storage.RunOption { return storage.WithCache(c) }

// RunOption configures RunOnline/RunBatch.
type RunOption = storage.RunOption

// Rack-aware placement.

// RackPlacementConfig parameterizes the HDFS-style layout.
type RackPlacementConfig = placement.RackConfig

// GenerateRackAwarePlacement builds an HDFS-style layout: original replica
// anywhere (Zipf-skewed), second in the same rack, third in another rack.
func GenerateRackAwarePlacement(cfg RackPlacementConfig) (*Placement, error) {
	return placement.GenerateRackAware(cfg)
}

// RackOf returns the rack housing a disk under the generator's striping.
func RackOf(d DiskID, numDisks, numRacks int) int {
	return placement.RackOf(d, numDisks, numRacks)
}

// Prediction-discounted scheduling.

// NewPredictiveScheduler returns the Section 3.3 extension: the composite
// cost discounted by each disk's decayed access frequency. gamma in [0,1)
// scales the discount; halfLife controls how fast history fades.
func NewPredictiveScheduler(loc Locator, cost CostConfig, gamma float64, halfLife time.Duration) (OnlineScheduler, error) {
	return sched.NewPredictive(loc, cost, gamma, halfLife)
}

// Queue disciplines.

// QueueDiscipline selects disk queue service order (set on
// SystemConfig.Discipline).
type QueueDiscipline = diskmodel.Discipline

// Disk queue disciplines.
const (
	QueueFIFO = diskmodel.FIFO
	QueueSSTF = diskmodel.SSTF
	QueueSCAN = diskmodel.SCAN
)

// Single-disk power-management analysis.
type (
	// GapPolicy is a single-disk spin-down policy over idle gaps.
	GapPolicy = dpm.GapPolicy
)

// FixedGapPolicy returns the fixed-threshold policy (2CPM when tau is
// OptimalGapThreshold).
func FixedGapPolicy(tau time.Duration) GapPolicy { return dpm.Fixed{Tau: tau} }

// OptimalGapThreshold returns tau* = E_up/down / (P_I - P_s), the
// 2-competitive threshold.
func OptimalGapThreshold(cfg PowerConfig) time.Duration { return dpm.OptimalThreshold(cfg) }

// GapPolicyCost evaluates a policy over an idle-gap sequence.
func GapPolicyCost(cfg PowerConfig, gaps []time.Duration, p GapPolicy) float64 {
	return dpm.PolicyCost(cfg, gaps, p)
}

// GapOracleCost evaluates the offline-optimal power manager.
func GapOracleCost(cfg PowerConfig, gaps []time.Duration) float64 {
	return dpm.OracleCost(cfg, gaps)
}

// CompetitiveRatio returns policy cost over oracle cost for a gap
// sequence.
func CompetitiveRatio(cfg PowerConfig, gaps []time.Duration, p GapPolicy) float64 {
	return dpm.CompetitiveRatio(cfg, gaps, p)
}

// Gear-shifting (PARAID-style) array.
type (
	// GearConfig parameterizes the gear-shifting manager.
	GearConfig = gear.Config
	// GearManager is the gear-shifting scheduler.
	GearManager = gear.Manager
)

// DefaultGearConfig returns a sensible gear configuration for numDisks.
func DefaultGearConfig(numDisks int) GearConfig { return gear.DefaultConfig(numDisks) }

// NewGearManager builds a gear-shifting scheduler over the placement.
func NewGearManager(cfg GearConfig, loc Locator) (*GearManager, error) {
	return gear.NewManager(cfg, loc)
}

// GenerateGearPlacement builds a layout where every block keeps a replica
// inside the low gear [0, minGear), so the array is fully servable in its
// lowest gear.
func GenerateGearPlacement(numDisks, minGear, numBlocks, rf int, seed int64) (*Placement, error) {
	return gear.GeneratePlacement(numDisks, minGear, numBlocks, rf, seed)
}

// NewWSCExactScheduler returns the batch scheduler with an optimal
// set-cover solver (branch and bound with greedy fallback); exponential
// worst case, for optimality-gap studies.
func NewWSCExactScheduler(loc Locator, cost CostConfig) BatchScheduler {
	return sched.WSCExact{Locations: loc, Cost: cost}
}

// Failure injection.

// FailureEvent takes a disk offline at At for Duration; its pending
// requests are re-dispatched to surviving replicas.
type FailureEvent = storage.FailureEvent

// WithFailures returns a run option injecting disk failures into a
// simulation.
func WithFailures(events ...FailureEvent) RunOption { return storage.WithFailures(events...) }

// WithStateLog streams every disk power-state transition to w as CSV
// ("seconds,disk,from,to").
func WithStateLog(w io.Writer) RunOption { return storage.WithStateLog(w) }
