package repro

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// These tests exercise the public facade end-to-end: everything a
// downstream user touches without reaching into internal packages.

func examplePlacement(t *testing.T) *Placement {
	t.Helper()
	plc, err := GeneratePlacement(PlacementConfig{
		NumDisks: 16, NumBlocks: 1000, ReplicationFactor: 3, ZipfExponent: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plc
}

func TestFacadeQuickstartFlow(t *testing.T) {
	t.Parallel()
	plc := examplePlacement(t)
	reqs := CelloLike(3000, 1000, 2)
	cfg := DefaultSystemConfig()
	cfg.NumDisks = 16

	static, err := RunOnline(cfg, plc.Locations, NewStaticScheduler(plc.Locations), reqs)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := RunOnline(cfg, plc.Locations,
		NewHeuristicScheduler(plc.Locations, DefaultCost(cfg.Power)), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if heur.NormalizedEnergy() <= 0 || heur.NormalizedEnergy() >= 1 {
		t.Errorf("normalized energy = %v", heur.NormalizedEnergy())
	}
	if static.Served != 3000 || heur.Served != 3000 {
		t.Errorf("served = %d/%d", static.Served, heur.Served)
	}
}

func TestFacadeBatchAndRandom(t *testing.T) {
	t.Parallel()
	plc := examplePlacement(t)
	reqs := FinancialLike(2000, 1000, 3)
	cfg := DefaultSystemConfig()
	cfg.NumDisks = 16
	wsc, err := RunBatch(cfg, plc.Locations,
		NewWSCScheduler(plc.Locations, DefaultCost(cfg.Power)), reqs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RunOnline(cfg, plc.Locations, NewRandomScheduler(plc.Locations, 5), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if wsc.Energy >= rnd.Energy {
		t.Errorf("WSC energy %.0f not below random %.0f", wsc.Energy, rnd.Energy)
	}
}

func TestFacadeOfflinePipeline(t *testing.T) {
	t.Parallel()
	plc := examplePlacement(t)
	reqs := CelloLike(1500, 1000, 4)
	cfg := DefaultPowerConfig()
	schedule, st, err := SolveOffline(reqs, plc.Locations, cfg, OfflineOptions{MaxSuccessors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !schedule.Valid(reqs, plc.Locations) {
		t.Fatal("offline schedule invalid")
	}
	if st.Energy <= 0 || st.DisksUsed == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Replaying through the simulator matches the analytic model within
	// the gap between prescient and reactive spin-ups plus standby draw.
	sys := DefaultSystemConfig()
	sys.NumDisks = 16
	replay, err := RunOnline(sys, plc.Locations,
		NewPrecomputedScheduler("mwis", schedule), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Served != len(reqs) {
		t.Errorf("replay served %d", replay.Served)
	}
	// The analytic model trades energy for zero spin-up latency (it idles
	// through sub-window gaps where the reactive simulator sleeps), and it
	// omits standby draw; the two can differ either way but must agree on
	// the regime.
	ratio := st.Energy / replay.Energy
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("analytic %.0f J vs simulated %.0f J: ratio %.2f outside [0.5, 2]",
			st.Energy, replay.Energy, ratio)
	}
}

func TestFacadeEvaluateScheduleWorkedExample(t *testing.T) {
	t.Parallel()
	plc, err := NewPlacement(4, [][]DiskID{
		{0}, {0, 1}, {0, 1, 3}, {2, 3}, {0, 3}, {2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	times := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second, 12 * time.Second, 13 * time.Second}
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{ID: RequestID(i), Block: BlockID(i), Arrival: times[i]}
	}
	st, err := EvaluateSchedule(reqs, Schedule{0, 0, 0, 2, 3, 3}, ToyPowerConfig(), plc.Locations)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Energy-19) > 1e-9 {
		t.Errorf("schedule C energy = %v, want 19", st.Energy)
	}
	exact, est, err := SolveOfflineExact(reqs, plc.Locations, ToyPowerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Energy-19) > 1e-9 || !exact.Valid(reqs, plc.Locations) {
		t.Errorf("exact energy = %v", est.Energy)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	t.Parallel()
	reqs := FinancialLike(500, 200, 6)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, FormatSPC, reqs); err != nil {
		t.Fatal(err)
	}
	loaded, blocks, err := LoadTrace(&buf, FormatSPC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 500 || blocks == 0 {
		t.Errorf("loaded %d requests over %d blocks", len(loaded), blocks)
	}
	if _, _, err := LoadTrace(&buf, TraceFormat(9), 0); err == nil {
		t.Error("accepted unknown format")
	}
	if err := WriteTrace(&buf, TraceFormat(9), nil); err == nil {
		t.Error("accepted unknown format for write")
	}
}

func TestFacadeExtensionsCompose(t *testing.T) {
	t.Parallel()
	plc := examplePlacement(t)
	reqs := WithWrites(CelloLike(2500, 1000, 7), 0.3, 7)
	cfg := DefaultSystemConfig()
	cfg.NumDisks = 16
	cfg.Discipline = QueueSSTF

	m, err := NewOffloadManager(plc.Locations, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(100, CachePowerAware, m.Locations)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnline(cfg, m.Locations,
		NewOffloadScheduler(m, NewHeuristicScheduler(m.Locations, DefaultCost(cfg.Power))),
		reqs, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2500 {
		t.Errorf("served %d", res.Served)
	}
	if m.Stats().Writes == 0 {
		t.Error("no writes routed")
	}
	if c.Stats().Hits == 0 {
		t.Error("no cache hits")
	}
}

func TestFacadePredictiveScheduler(t *testing.T) {
	t.Parallel()
	plc := examplePlacement(t)
	reqs := CelloLike(2000, 1000, 8)
	cfg := DefaultSystemConfig()
	cfg.NumDisks = 16
	p, err := NewPredictiveScheduler(plc.Locations, DefaultCost(cfg.Power), 0.5, cfg.Power.Breakeven())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnline(cfg, plc.Locations, p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2000 {
		t.Errorf("served %d", res.Served)
	}
}

func TestFacadeDPMHelpers(t *testing.T) {
	t.Parallel()
	cfg := DefaultPowerConfig()
	tau := OptimalGapThreshold(cfg)
	if tau <= 0 {
		t.Fatalf("tau = %v", tau)
	}
	gaps := []time.Duration{time.Second, 10 * time.Minute, tau}
	policy := FixedGapPolicy(tau)
	alg := GapPolicyCost(cfg, gaps, policy)
	opt := GapOracleCost(cfg, gaps)
	if alg < opt {
		t.Error("policy beat the oracle")
	}
	if r := CompetitiveRatio(cfg, gaps, policy); r > 2 {
		t.Errorf("competitive ratio %v > 2", r)
	}
}

func TestFacadeRackAware(t *testing.T) {
	t.Parallel()
	plc, err := GenerateRackAwarePlacement(RackPlacementConfig{
		NumDisks: 12, NumRacks: 3, NumBlocks: 100, ReplicationFactor: 3, ZipfExponent: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 100; b++ {
		ls := plc.Locations(BlockID(b))
		if RackOf(ls[0], 12, 3) != RackOf(ls[1], 12, 3) {
			t.Fatal("second replica not in the original rack")
		}
	}
}

func TestFacadeWorkloadStats(t *testing.T) {
	t.Parallel()
	ws := AnalyzeWorkload(CelloLike(5000, 1000, 9))
	if ws.Count != 5000 || ws.CoV < 2 {
		t.Errorf("stats = %+v", ws)
	}
}

func TestFacadeExperimentScales(t *testing.T) {
	t.Parallel()
	if FullScale().NumDisks != 180 {
		t.Error("full scale disks != 180")
	}
	if err := SmallScale().Validate(); err != nil {
		t.Error(err)
	}
	if TraceCello.String() != "cello" || TraceFinancial.String() != "financial1" {
		t.Error("trace names wrong")
	}
}
