package repro

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/account"
	"repro/internal/diskmodel"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/flight"
	"repro/internal/obs/monitor"
	"repro/internal/offline"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
)

// benchScale keeps one benchmark iteration well under a second while
// preserving every qualitative trend; pass -scale full to cmd/figures for
// paper-scale numbers (recorded in EXPERIMENTS.md).
func benchScale() experiments.Scale {
	return experiments.Scale{
		NumDisks:       12,
		NumRequests:    1500,
		NumBlocks:      800,
		Seed:           1,
		BatchInterval:  100 * time.Millisecond,
		MWISSuccessors: 4,
		MWISMaxNodes:   1_000_000,
		MWISPasses:     2,
		ZipfSteps:      []float64{0, 1},
		Alphas:         []float64{0, 1},
		Betas:          []float64{10},
	}
}

// --- One benchmark per paper table/figure ------------------------------

func BenchmarkFigure2BatchExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2()
	}
}

func BenchmarkFigure3OfflineExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3()
	}
}

func BenchmarkFigure4MWISWalkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4()
	}
}

func BenchmarkFigure5PowerConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5()
	}
}

func benchSweep(b *testing.B, tr experiments.Trace, render func(*experiments.ReplicationSweep) *experiments.Table) {
	b.Helper()
	// Prime the process-wide sweep cache so every iteration measures the
	// steady state (hit + render): each figure shares one simulated sweep,
	// exactly as cmd/figures does, and allocs/op stays deterministic for the
	// regression gate. BenchmarkSweepCached/cold records the miss cost.
	if _, err := experiments.SweepReplication(benchScale(), tr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw, err := experiments.SweepReplication(benchScale(), tr)
		if err != nil {
			b.Fatal(err)
		}
		if out := render(sw).Render(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSweepCached records the two sides of the sweep cache on private
// cache instances: cold (simulate + store) and warm (content-hash + lookup).
// scripts/benchcheck enforces warm ≥50× faster than cold.
func BenchmarkSweepCached(b *testing.B) {
	s := benchScale()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.NewSweepCache().Sweep(s, experiments.Cello); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := experiments.NewSweepCache()
		if _, err := c.Sweep(s, experiments.Cello); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Sweep(s, experiments.Cello); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFigure6EnergyVsReplication(b *testing.B) {
	benchSweep(b, experiments.Cello, (*experiments.ReplicationSweep).Figure6)
}

func BenchmarkFigure7SpinUpsVsReplication(b *testing.B) {
	benchSweep(b, experiments.Cello, (*experiments.ReplicationSweep).Figure7)
}

func BenchmarkFigure8ResponseVsReplication(b *testing.B) {
	benchSweep(b, experiments.Cello, (*experiments.ReplicationSweep).Figure8)
}

func BenchmarkFigure9PerDiskBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchScale(), experiments.Cello); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10LocalitySurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(benchScale(), experiments.Cello); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11CostFunctionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(benchScale(), experiments.Cello); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12ResponseCCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(benchScale(), experiments.Cello); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13P90Response(b *testing.B) {
	benchSweep(b, experiments.Cello, (*experiments.ReplicationSweep).Figure13)
}

func BenchmarkFigure14FinancialEnergy(b *testing.B) {
	benchSweep(b, experiments.Financial, (*experiments.ReplicationSweep).Figure6)
}

func BenchmarkFigure15FinancialSpinUps(b *testing.B) {
	benchSweep(b, experiments.Financial, (*experiments.ReplicationSweep).Figure7)
}

func BenchmarkFigure16FinancialResponse(b *testing.B) {
	benchSweep(b, experiments.Financial, (*experiments.ReplicationSweep).Figure8)
}

func BenchmarkFigure17FinancialBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchScale(), experiments.Financial); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benchmarks ----------------------------------------------

func benchFixture(b *testing.B, rf int) ([]Request, *placement.Placement, storage.Config) {
	b.Helper()
	s := benchScale()
	plc, err := placement.Generate(placement.GenerateConfig{
		NumDisks: s.NumDisks, NumBlocks: s.NumBlocks,
		ReplicationFactor: rf, ZipfExponent: 1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	reqs := workload.CelloLike(s.NumRequests, s.NumBlocks, 1)
	cfg := storage.DefaultConfig()
	cfg.NumDisks = s.NumDisks
	return reqs, plc, cfg
}

// BenchmarkSimulateOnline measures end-to-end event-driven simulation
// throughput (requests scheduled, serviced and power-managed per op).
func BenchmarkSimulateOnline(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateBatchWSC measures the batch path including greedy set
// cover at every interval.
func BenchmarkSimulateBatchWSC(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	w := sched.WSC{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := storage.RunBatch(cfg, plc.Locations, w, reqs, 100*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineMWISPipeline measures graph construction + GWMIN +
// schedule derivation + refinement on the bench trace at full parallelism
// (the offline batch cell of the regression harness).
func BenchmarkOfflineMWISPipeline(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := offline.SolveRefined(reqs, plc.Locations, cfg.Power,
			offline.BuildOptions{MaxSuccessors: 4, Workers: runtime.GOMAXPROCS(0)}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) -------

// BenchmarkAblationMWISNoRefinement isolates the local-search contribution:
// compare ns/op and the reported energy against the refined pipeline.
func BenchmarkAblationMWISNoRefinement(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	b.ResetTimer()
	var energy float64
	for i := 0; i < b.N; i++ {
		_, st, err := offline.Solve(reqs, plc.Locations, cfg.Power, offline.BuildOptions{MaxSuccessors: 4})
		if err != nil {
			b.Fatal(err)
		}
		energy = st.Energy
	}
	b.ReportMetric(energy, "joules")
}

func BenchmarkAblationMWISWithRefinement(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	b.ResetTimer()
	var energy float64
	for i := 0; i < b.N; i++ {
		_, st, err := offline.SolveRefined(reqs, plc.Locations, cfg.Power, offline.BuildOptions{MaxSuccessors: 4}, 4)
		if err != nil {
			b.Fatal(err)
		}
		energy = st.Energy
	}
	b.ReportMetric(energy, "joules")
}

// BenchmarkAblationSuccessorCap measures how the MWIS graph-construction
// cap trades graph size (and build time) against schedule quality.
func BenchmarkAblationSuccessorCap(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	for _, cap := range []int{1, 4, 16} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				_, st, err := offline.Solve(reqs, plc.Locations, cfg.Power, offline.BuildOptions{MaxSuccessors: cap})
				if err != nil {
					b.Fatal(err)
				}
				energy = st.Energy
			}
			b.ReportMetric(energy, "joules")
		})
	}
}

// BenchmarkAblationBatchInterval measures the WSC queueing/energy tradeoff
// across scheduling intervals (the paper fixes 0.1 s).
func BenchmarkAblationBatchInterval(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	w := sched.WSC{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	for _, interval := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
		interval := interval
		b.Run(interval.String(), func(b *testing.B) {
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				res, err := storage.RunBatch(cfg, plc.Locations, w, reqs, interval)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Response.Mean()
			}
			b.ReportMetric(float64(mean.Milliseconds()), "ms-mean-response")
		})
	}
}

// BenchmarkAblationCoverSolver compares the greedy and exact covers on the
// real WSC batch path: cost difference shows the greedy's optimality gap.
func BenchmarkAblationCoverSolver(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	cost := sched.DefaultCost(cfg.Power)
	for _, solver := range []struct {
		name  string
		batch sched.Batch
	}{
		{"greedy", sched.WSC{Locations: plc.Locations, Cost: cost}},
		{"exact", sched.WSCExact{Locations: plc.Locations, Cost: cost, MaxExpansions: 50000}},
	} {
		solver := solver
		b.Run(solver.name, func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				res, err := storage.RunBatch(cfg, plc.Locations, solver.batch, reqs, 100*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				energy = res.Energy
			}
			b.ReportMetric(energy, "joules")
		})
	}
}

// BenchmarkAblationQueueDiscipline measures how the per-disk service order
// affects response time under the heuristic scheduler.
func BenchmarkAblationQueueDiscipline(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
	for _, disc := range []diskmodel.Discipline{diskmodel.FIFO, diskmodel.SSTF, diskmodel.SCAN} {
		disc := disc
		b.Run(disc.String(), func(b *testing.B) {
			var mean time.Duration
			dcfg := cfg
			dcfg.Discipline = disc
			for i := 0; i < b.N; i++ {
				res, err := storage.RunOnline(dcfg, plc.Locations, h, reqs)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Response.Mean()
			}
			b.ReportMetric(float64(mean.Milliseconds()), "ms-mean-response")
		})
	}
}

// BenchmarkAblationGreedyMWISVariant compares the two greedy MWIS rules of
// Sakai et al. on the offline reduction graph.
func BenchmarkAblationGreedyMWISVariant(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	in, err := offline.Build(reqs, plc.Locations, cfg.Power, offline.BuildOptions{MaxSuccessors: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		algo func(*graph.Graph) ([]int, float64)
	}{
		{"gwmin", graph.GWMIN},
		{"gwmin2", graph.GWMIN2},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var weight float64
			for i := 0; i < b.N; i++ {
				_, weight = variant.algo(in.Graph)
			}
			b.ReportMetric(weight, "saving-joules")
		})
	}
}

// BenchmarkDoctorLive measures the live runtime-verification overhead: the
// same online cell as BenchmarkSimulateOnline with the full invariant
// monitor suite (power machine, energy, requests, replicas, threshold,
// latency) teed into the event stream. Compare against
// BenchmarkSimulateOnline for the cost of -doctor; the alloc gate on the
// un-monitored benchmarks proves a disabled doctor costs nothing.
func BenchmarkDoctorLive(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	b.ResetTimer()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		suite := monitor.NewSuite(monitor.Config{
			Power: cfg.Power, Mech: cfg.Mech, Policy: cfg.Policy, Locations: plc.Locations,
		})
		tr := obs.NewTracer(1)
		h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
		if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs,
			storage.WithTracer(tr), storage.WithMonitor(suite)); err != nil {
			b.Fatal(err)
		}
		if !suite.Passed() {
			b.Fatalf("doctor reported %d violations in the benchmark cell", suite.Total())
		}
		events = suite.Events()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/secs, "events/sec")
	}
}

// --- Trace analytics --------------------------------------------------

// BenchmarkAnalyzeReplay measures the tracelens replay engine: decode a
// recorded binary event log, reconstruct the run (lifecycles, power-state
// timelines, decision index) and replay it into a fresh metrics collector.
// Throughput is reported as events/sec — the analyzer-side number the
// regression harness records alongside the simulator benchmarks.
func BenchmarkAnalyzeReplay(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	var log bytes.Buffer
	tr := obs.NewTracer(1024)
	tr.SetSink(&log, true)
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs,
		storage.WithTracer(tr)); err != nil {
		b.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	raw := log.Bytes()
	events, err := analyze.Read(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		evs, err := analyze.Read(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		run, err := analyze.New(evs)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := run.Replay(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(events))*float64(b.N)/secs, "events/sec")
	}
}

// BenchmarkCarbonAttribution measures the carbon/cost integrator: feed a
// recorded event stream through a fresh account.Accumulator under the
// diurnal grid and finalize the windowed gCO2e/$ report. Throughput is
// reported as events/sec alongside the doctor and analyzer numbers. The
// accounting-off path needs no separate gate: no other benchmark attaches
// an accumulator, so their alloc counts (checked exactly by
// scripts/bench.sh -check) already pin the disabled path.
func BenchmarkCarbonAttribution(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	var log bytes.Buffer
	tr := obs.NewTracer(1024)
	tr.SetSink(&log, true)
	h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: tr}
	if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs,
		storage.WithTracer(tr)); err != nil {
		b.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	events, err := analyze.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var gco2e float64
	for i := 0; i < b.N; i++ {
		acct, err := account.NewAccumulator(cfg.Power, account.DiurnalGrid(), account.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			acct.Observe(ev)
		}
		rep := acct.Finalize()
		if rep.GCO2e <= 0 {
			b.Fatalf("degenerate report: %+v", rep)
		}
		gco2e = rep.GCO2e
	}
	b.StopTimer()
	_ = gco2e
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(events))*float64(b.N)/secs, "events/sec")
	}
}

// BenchmarkFlightRecorder prices the always-on flight recorder at the run
// level, in three steps. "off" is the plain untraced run — the recorder-off
// hot path, whose allocs/op scripts/bench.sh -check pins EXACTLY (zero
// tolerance, via benchcheck -exactallocs): the recorder must cost nothing
// when absent. "base" adds the streaming binary tracer the recorder rides
// on, and "on" attaches the recorder to it; on-vs-base is the recorder's
// marginal cost (one ring copy plus a pending-trigger check per event),
// which benchcheck -overheadtol holds under the <5% budget.
func BenchmarkFlightRecorder(b *testing.B) {
	reqs, plc, cfg := benchFixture(b, 3)
	rec := flight.New(flight.Config{Dir: b.TempDir()})
	// One ring-buffered run up front pins the deterministic event count, so
	// the traced sub-benchmarks can report events/sec without counting
	// inside the timed loop.
	pre := obs.NewTracer(1 << 16)
	hpre := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power), Tracer: pre}
	if _, err := storage.RunOnline(cfg, plc.Locations, hpre, reqs, storage.WithTracer(pre)); err != nil {
		b.Fatal(err)
	}
	eventsPerRun := pre.Len()
	run := func(b *testing.B, traced bool, rec *flight.Recorder) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var opts []storage.RunOption
			h := sched.Heuristic{Locations: plc.Locations, Cost: sched.DefaultCost(cfg.Power)}
			if traced {
				tr := obs.NewTracer(512)
				tr.SetSink(io.Discard, true)
				h.Tracer = tr
				opts = append(opts, storage.WithTracer(tr))
			}
			if rec != nil {
				opts = append(opts, storage.WithFlight(rec))
			}
			if _, err := storage.RunOnline(cfg, plc.Locations, h, reqs, opts...); err != nil {
				b.Fatal(err)
			}
		}
		if traced {
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(eventsPerRun)*float64(b.N)/secs, "events/sec")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false, nil) })
	b.Run("base", func(b *testing.B) { run(b, true, nil) })
	b.Run("on", func(b *testing.B) { run(b, true, rec) })
	if rec.Dumps() != 0 {
		b.Fatalf("untriggered recorder wrote %d dumps", rec.Dumps())
	}
}

// --- Sharded kernel / fleet -------------------------------------------

// benchFleetConfig is the kernel-throughput workload: a closed-loop
// rack-partitioned fleet with burst gaps long enough to spin disks down,
// so the event mix covers the full request/service/power-cycle machinery.
func benchFleetConfig(disks, racks, reqsPerDisk, shards int) storage.FleetConfig {
	cfg := storage.DefaultFleetConfig()
	cfg.NumDisks = disks
	cfg.NumRacks = racks
	cfg.RequestsPerDisk = reqsPerDisk
	cfg.Shards = shards
	cfg.Seed = 42
	// Fleet-regime burst shape: enough requests per disk per burst that
	// spin cycles amortize (the paper's bursty Cello traces), keeping the
	// event mix dominated by request service rather than power timers.
	cfg.BurstLen = 800
	cfg.InterArrival = 25 * time.Microsecond
	return cfg
}

// BenchmarkKernelThroughput measures raw event throughput of the serial
// engine (shards=0) against the sharded free-running kernel at several
// shard counts. events/sec is computed over the event loop only (setup
// excluded); the regression harness gates its floor via benchcheck
// -eventsfloor.
func BenchmarkKernelThroughput(b *testing.B) {
	counts := []int{0, 1, 4, 40, runtime.GOMAXPROCS(0) * 4}
	seen := map[int]bool{}
	for _, shards := range counts {
		if seen[shards] {
			continue
		}
		seen[shards] = true
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				res, err := storage.RunFleet(benchFleetConfig(2000, 40, 400, shards))
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
				wall += res.Wall
			}
			if s := wall.Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/sec")
			}
		})
	}
}

// BenchmarkFleet100k is the headline scale point: a 100k-disk fleet at
// fleet event density (hundreds of millions of events). One iteration is
// the whole run; run with -benchtime 1x. One shard per rack keeps each
// sub-kernel's working set small enough to stay cache-resident, and the
// GC stays off for the run (see FleetConfig.RelaxGC) — the same shape
// cmd/figures -fleet records.
func BenchmarkFleet100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchFleetConfig(100_000, 1_000, 1_400, 1_000)
		cfg.RelaxGC = true
		res, err := storage.RunFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Served != 100_000*1_400 {
			b.Fatalf("served %d requests", res.Served)
		}
		b.ReportMetric(res.EventsPerSec, "events/sec")
		b.ReportMetric(float64(res.Events), "events")
	}
}
